// Package topology defines every network class evaluated in the paper: the
// nine super Cayley graph families of §3.3 (macro-star, rotation-star,
// complete-rotation-star, macro-rotator, rotation-rotator,
// complete-rotation-rotator, insertion-selection, macro-IS, rotation-IS, and
// complete-rotation-IS), the permutation-graph baselines they are compared
// against (star, rotator, pancake, bubble-sort, transposition network), and
// the array baselines of Figures 4–6 (hypercube, 2-D/3-D torus, k-ary
// n-cube, CCC).
//
// Every super Cayley network couples three things:
//
//   - a generator set (its Cayley graph, measurable exactly via
//     internal/core for k ≤ 10),
//   - the ball-arrangement game rules whose solver routes packets in it
//     (internal/bag), and
//   - closed-form degree and diameter-bound formulas used by the figure
//     harness at sizes far beyond exhaustive reach.
package topology

import (
	"fmt"

	"repro/internal/bag"
	"repro/internal/core"
	"repro/internal/gen"
)

// Family enumerates the network classes.
type Family int

const (
	Star Family = iota
	Rotator
	Pancake
	BubbleSort
	TranspositionNet
	IS
	MS
	RS
	CompleteRS
	MR
	RR
	CompleteRR
	MIS
	RIS
	CompleteRIS
)

func (f Family) String() string {
	switch f {
	case Star:
		return "star"
	case Rotator:
		return "rotator"
	case Pancake:
		return "pancake"
	case BubbleSort:
		return "bubble-sort"
	case TranspositionNet:
		return "transposition"
	case IS:
		return "IS"
	case MS:
		return "MS"
	case RS:
		return "RS"
	case CompleteRS:
		return "complete-RS"
	case MR:
		return "MR"
	case RR:
		return "RR"
	case CompleteRR:
		return "complete-RR"
	case MIS:
		return "MIS"
	case RIS:
		return "RIS"
	case CompleteRIS:
		return "complete-RIS"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// IsSuperCayley reports whether the family is one of the paper's super
// Cayley graph classes (it has distinct nucleus and super generators).
func (f Family) IsSuperCayley() bool {
	switch f {
	case MS, RS, CompleteRS, MR, RR, CompleteRR, MIS, RIS, CompleteRIS:
		return true
	}
	return false
}

// Network is a concrete instance of one family.
type Network struct {
	family Family
	l, n   int // super Cayley parameters; l = 1, n = k-1 for nucleus-only nets
	graph  *core.Graph
	// rules are the game rules whose solver routes in this network; only
	// set for families routed by internal/bag.
	rules    bag.Rules
	hasRules bool
	// rotSubset, when non-nil, marks a rotation-subset network (§3.3.4) and
	// lists the available rotation exponents; routing expands complete
	// rotations into words over these.
	rotSubset []int
	// recursive, when non-nil, marks a recursive MS (§3.3.4); routing
	// expands outer nucleus transpositions into inner-MS words.
	recursive *recursiveSpec
	// allowed/allowedPerm/names are precomputed per-network lookup tables for
	// the allocation-free route path: generator membership by value, by
	// action (for client-supplied moves whose notation differs), and the
	// rendered paper notation of each link.
	allowed     map[gen.Generator]bool
	allowedPerm map[string]bool
	names       map[gen.Generator]string
}

// Family returns the network's class.
func (nw *Network) Family() Family { return nw.family }

// L returns the number of super-symbols (boxes); 1 for nucleus-only nets.
func (nw *Network) L() int { return nw.l }

// N returns the super-symbol length (balls per box).
func (nw *Network) N() int { return nw.n }

// K returns the number of symbols in a node label.
func (nw *Network) K() int { return nw.graph.K() }

// Nodes returns the network size N = k!.
func (nw *Network) Nodes() int64 { return nw.graph.Order() }

// Graph returns the underlying Cayley graph.
func (nw *Network) Graph() *core.Graph { return nw.graph }

// Degree returns the node degree (= number of distinct generators).
func (nw *Network) Degree() int { return nw.graph.Degree() }

// InterclusterDegree returns the number of super generators (§4.3).
func (nw *Network) InterclusterDegree() int { return nw.graph.InterclusterDegree() }

// Undirected reports whether the network is an undirected Cayley graph.
func (nw *Network) Undirected() bool { return nw.graph.Undirected() }

// Name renders the instance name in the paper's notation, e.g. "MS(3,2)".
func (nw *Network) Name() string { return nw.graph.Name() }

// Rules returns the game rules used for routing and whether the network is
// game-routed.
func (nw *Network) Rules() (bag.Rules, bool) { return nw.rules, nw.hasRules }

func (nw *Network) String() string { return nw.graph.String() }

// dedupe removes generators whose action duplicates an earlier generator's
// (e.g. I2 and I2' both swap the first two symbols), keeping definition
// order. Cayley graph degree counts distinct generators only.
func dedupe(k int, gens []gen.Generator) []gen.Generator {
	seen := make(map[string]bool, len(gens))
	out := gens[:0]
	for _, g := range gens {
		key := g.AsPerm(k).String()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, g)
	}
	return out
}

func buildNetwork(family Family, name string, l, n, k int, gens []gen.Generator, rules bag.Rules, hasRules bool) (*Network, error) {
	gens = dedupe(k, gens)
	set, err := gen.NewSet(k, gens...)
	if err != nil {
		return nil, fmt.Errorf("topology: %s: %v", name, err)
	}
	nw := &Network{
		family:   family,
		l:        l,
		n:        n,
		graph:    core.NewGraph(name, set),
		rules:    rules,
		hasRules: hasRules,
	}
	nw.allowed = make(map[gen.Generator]bool, len(gens))
	nw.allowedPerm = make(map[string]bool, len(gens))
	nw.names = make(map[gen.Generator]string, len(gens))
	for _, g := range set.Generators() {
		nw.allowed[g] = true
		nw.allowedPerm[g.AsPerm(k).String()] = true
		nw.names[g] = g.Name()
	}
	return nw, nil
}

// --- nucleus-only families -------------------------------------------------

// NewStar returns the k-dimensional star graph: undirected Cayley graph with
// transposition generators T_2..T_k.
func NewStar(k int) (*Network, error) {
	if k < 2 {
		return nil, fmt.Errorf("topology: NewStar(%d): k must be >= 2", k)
	}
	var gens []gen.Generator
	for i := 2; i <= k; i++ {
		gens = append(gens, gen.NewTransposition(i))
	}
	return buildNetwork(Star, fmt.Sprintf("star(%d)", k), 1, k-1, k, gens, bag.Rules{}, false)
}

// NewRotator returns the k-dimensional rotator graph (Corbett): directed
// Cayley graph with insertion generators I_2..I_k.
func NewRotator(k int) (*Network, error) {
	if k < 2 {
		return nil, fmt.Errorf("topology: NewRotator(%d): k must be >= 2", k)
	}
	var gens []gen.Generator
	for i := 2; i <= k; i++ {
		gens = append(gens, gen.NewInsertion(i))
	}
	return buildNetwork(Rotator, fmt.Sprintf("rotator(%d)", k), 1, k-1, k, gens, bag.Rules{}, false)
}

// NewPancake returns the k-dimensional pancake graph: undirected Cayley
// graph with prefix-reversal generators F_2..F_k.
func NewPancake(k int) (*Network, error) {
	if k < 2 {
		return nil, fmt.Errorf("topology: NewPancake(%d): k must be >= 2", k)
	}
	var gens []gen.Generator
	for i := 2; i <= k; i++ {
		gens = append(gens, gen.NewPrefixReversal(i))
	}
	return buildNetwork(Pancake, fmt.Sprintf("pancake(%d)", k), 1, k-1, k, gens, bag.Rules{}, false)
}

// NewBubbleSort returns the k-dimensional bubble-sort graph: undirected
// Cayley graph with adjacent transpositions P_{i,i+1}.
func NewBubbleSort(k int) (*Network, error) {
	if k < 2 {
		return nil, fmt.Errorf("topology: NewBubbleSort(%d): k must be >= 2", k)
	}
	var gens []gen.Generator
	for i := 1; i < k; i++ {
		gens = append(gens, gen.NewPositionSwap(i, i+1))
	}
	return buildNetwork(BubbleSort, fmt.Sprintf("bubble(%d)", k), 1, k-1, k, gens, bag.Rules{}, false)
}

// NewTranspositionNet returns the k-dimensional transposition network:
// undirected Cayley graph with all position swaps P_{i,j}.
func NewTranspositionNet(k int) (*Network, error) {
	if k < 2 {
		return nil, fmt.Errorf("topology: NewTranspositionNet(%d): k must be >= 2", k)
	}
	var gens []gen.Generator
	for i := 1; i < k; i++ {
		for j := i + 1; j <= k; j++ {
			gens = append(gens, gen.NewPositionSwap(i, j))
		}
	}
	return buildNetwork(TranspositionNet, fmt.Sprintf("transposition(%d)", k), 1, k-1, k, gens, bag.Rules{}, false)
}

// NewIS returns the k-dimensional insertion-selection network (Definition
// 3.10): undirected Cayley graph with insertions I_2..I_k and selections
// I_2'..I_k' (I_2' duplicates I_2, so the degree is 2k-3).
func NewIS(k int) (*Network, error) {
	if k < 2 {
		return nil, fmt.Errorf("topology: NewIS(%d): k must be >= 2", k)
	}
	var gens []gen.Generator
	for i := 2; i <= k; i++ {
		gens = append(gens, gen.NewInsertion(i))
	}
	for i := 2; i <= k; i++ {
		gens = append(gens, gen.NewSelection(i))
	}
	rules := bag.Rules{Layout: bag.MustLayout(1, k-1), Nucleus: bag.InsertionNucleus, Super: bag.NoSuper}
	return buildNetwork(IS, fmt.Sprintf("IS(%d)", k), 1, k-1, k, gens, rules, true)
}

// --- super Cayley families ---------------------------------------------------

func checkLN(fam Family, l, n int) error {
	if l < 2 || n < 1 {
		return fmt.Errorf("topology: %v(%d,%d): need l >= 2 and n >= 1", fam, l, n)
	}
	return nil
}

// nucleusGens returns the nucleus generator block shared by each family.
func transpositionNucleus(n int) []gen.Generator {
	var gens []gen.Generator
	for i := 2; i <= n+1; i++ {
		gens = append(gens, gen.NewTransposition(i))
	}
	return gens
}

func insertionNucleus(n int) []gen.Generator {
	var gens []gen.Generator
	for i := 2; i <= n+1; i++ {
		gens = append(gens, gen.NewInsertion(i))
	}
	return gens
}

func insertionSelectionNucleus(n int) []gen.Generator {
	gens := insertionNucleus(n)
	for i := 2; i <= n+1; i++ {
		gens = append(gens, gen.NewSelection(i))
	}
	return gens
}

func swapSupers(l, n int) []gen.Generator {
	var gens []gen.Generator
	for i := 2; i <= l; i++ {
		gens = append(gens, gen.NewSwap(i, n))
	}
	return gens
}

func rotationPairSupers(l, n int) []gen.Generator {
	gens := []gen.Generator{gen.NewRotation(1, n)}
	if l > 2 {
		gens = append(gens, gen.NewRotation(l-1, n))
	}
	return gens
}

func rotationAllSupers(l, n int) []gen.Generator {
	var gens []gen.Generator
	for i := 1; i <= l-1; i++ {
		gens = append(gens, gen.NewRotation(i, n))
	}
	return gens
}

// NewMS returns the macro-star network MS(l,n) (§3.1): transposition
// nucleus generators plus swap super generators.
func NewMS(l, n int) (*Network, error) {
	if err := checkLN(MS, l, n); err != nil {
		return nil, err
	}
	k := n*l + 1
	gens := append(transpositionNucleus(n), swapSupers(l, n)...)
	rules := bag.Rules{Layout: bag.MustLayout(l, n), Nucleus: bag.TranspositionNucleus, Super: bag.SwapSuper}
	return buildNetwork(MS, fmt.Sprintf("MS(%d,%d)", l, n), l, n, k, gens, rules, true)
}

// NewRS returns the rotation-star network RS(l,n) (Definition 3.5):
// transposition nucleus plus the rotation pair R, R^{-1}.
func NewRS(l, n int) (*Network, error) {
	if err := checkLN(RS, l, n); err != nil {
		return nil, err
	}
	k := n*l + 1
	gens := append(transpositionNucleus(n), rotationPairSupers(l, n)...)
	rules := bag.Rules{Layout: bag.MustLayout(l, n), Nucleus: bag.TranspositionNucleus, Super: bag.RotPairSuper}
	return buildNetwork(RS, fmt.Sprintf("RS(%d,%d)", l, n), l, n, k, gens, rules, true)
}

// NewCompleteRS returns the complete-rotation-star network (Definition 3.6):
// transposition nucleus plus all rotations R^1..R^{l-1}.
func NewCompleteRS(l, n int) (*Network, error) {
	if err := checkLN(CompleteRS, l, n); err != nil {
		return nil, err
	}
	k := n*l + 1
	gens := append(transpositionNucleus(n), rotationAllSupers(l, n)...)
	rules := bag.Rules{Layout: bag.MustLayout(l, n), Nucleus: bag.TranspositionNucleus, Super: bag.RotCompleteSuper}
	return buildNetwork(CompleteRS, fmt.Sprintf("complete-RS(%d,%d)", l, n), l, n, k, gens, rules, true)
}

// NewMR returns the macro-rotator network MR(l,n) (Definition 3.7):
// insertion nucleus plus swap super generators (directed).
func NewMR(l, n int) (*Network, error) {
	if err := checkLN(MR, l, n); err != nil {
		return nil, err
	}
	k := n*l + 1
	gens := append(insertionNucleus(n), swapSupers(l, n)...)
	rules := bag.Rules{Layout: bag.MustLayout(l, n), Nucleus: bag.InsertionNucleus, Super: bag.SwapSuper}
	return buildNetwork(MR, fmt.Sprintf("MR(%d,%d)", l, n), l, n, k, gens, rules, true)
}

// NewRR returns the rotation-rotator network RR(l,n) (Definition 3.8):
// insertion nucleus plus the single rotation R (directed).
func NewRR(l, n int) (*Network, error) {
	if err := checkLN(RR, l, n); err != nil {
		return nil, err
	}
	k := n*l + 1
	gens := append(insertionNucleus(n), gen.NewRotation(1, n))
	rules := bag.Rules{Layout: bag.MustLayout(l, n), Nucleus: bag.InsertionNucleus, Super: bag.RotSingleSuper}
	return buildNetwork(RR, fmt.Sprintf("RR(%d,%d)", l, n), l, n, k, gens, rules, true)
}

// NewCompleteRR returns the complete-rotation-rotator network (Definition
// 3.9): insertion nucleus plus all rotations (directed).
func NewCompleteRR(l, n int) (*Network, error) {
	if err := checkLN(CompleteRR, l, n); err != nil {
		return nil, err
	}
	k := n*l + 1
	gens := append(insertionNucleus(n), rotationAllSupers(l, n)...)
	rules := bag.Rules{Layout: bag.MustLayout(l, n), Nucleus: bag.InsertionNucleus, Super: bag.RotCompleteSuper}
	return buildNetwork(CompleteRR, fmt.Sprintf("complete-RR(%d,%d)", l, n), l, n, k, gens, rules, true)
}

// NewMIS returns the macro-IS network MIS(l,n) (Definition 3.11):
// insertion+selection nucleus plus swap super generators (undirected).
func NewMIS(l, n int) (*Network, error) {
	if err := checkLN(MIS, l, n); err != nil {
		return nil, err
	}
	k := n*l + 1
	gens := append(insertionSelectionNucleus(n), swapSupers(l, n)...)
	rules := bag.Rules{Layout: bag.MustLayout(l, n), Nucleus: bag.InsertionNucleus, Super: bag.SwapSuper}
	return buildNetwork(MIS, fmt.Sprintf("MIS(%d,%d)", l, n), l, n, k, gens, rules, true)
}

// NewRIS returns the rotation-IS network RIS(l,n) (Definition 3.12):
// insertion+selection nucleus plus the rotation pair (undirected).
func NewRIS(l, n int) (*Network, error) {
	if err := checkLN(RIS, l, n); err != nil {
		return nil, err
	}
	k := n*l + 1
	gens := append(insertionSelectionNucleus(n), rotationPairSupers(l, n)...)
	rules := bag.Rules{Layout: bag.MustLayout(l, n), Nucleus: bag.InsertionNucleus, Super: bag.RotPairSuper}
	return buildNetwork(RIS, fmt.Sprintf("RIS(%d,%d)", l, n), l, n, k, gens, rules, true)
}

// NewCompleteRIS returns the complete-rotation-IS network (Definition 3.13):
// insertion+selection nucleus plus all rotations (undirected).
func NewCompleteRIS(l, n int) (*Network, error) {
	if err := checkLN(CompleteRIS, l, n); err != nil {
		return nil, err
	}
	k := n*l + 1
	gens := append(insertionSelectionNucleus(n), rotationAllSupers(l, n)...)
	rules := bag.Rules{Layout: bag.MustLayout(l, n), Nucleus: bag.InsertionNucleus, Super: bag.RotCompleteSuper}
	return buildNetwork(CompleteRIS, fmt.Sprintf("complete-RIS(%d,%d)", l, n), l, n, k, gens, rules, true)
}

// New dispatches to the family constructor. For nucleus-only families the
// instance is determined by k = n+1 and l is ignored.
func New(fam Family, l, n int) (*Network, error) {
	switch fam {
	case Star:
		return NewStar(n + 1)
	case Rotator:
		return NewRotator(n + 1)
	case Pancake:
		return NewPancake(n + 1)
	case BubbleSort:
		return NewBubbleSort(n + 1)
	case TranspositionNet:
		return NewTranspositionNet(n + 1)
	case IS:
		return NewIS(n + 1)
	case MS:
		return NewMS(l, n)
	case RS:
		return NewRS(l, n)
	case CompleteRS:
		return NewCompleteRS(l, n)
	case MR:
		return NewMR(l, n)
	case RR:
		return NewRR(l, n)
	case CompleteRR:
		return NewCompleteRR(l, n)
	case MIS:
		return NewMIS(l, n)
	case RIS:
		return NewRIS(l, n)
	case CompleteRIS:
		return NewCompleteRIS(l, n)
	default:
		return nil, fmt.Errorf("topology: New: unknown family %v", fam)
	}
}

// AllSuperCayleyFamilies lists the nine super Cayley classes in paper order.
func AllSuperCayleyFamilies() []Family {
	return []Family{MS, RS, CompleteRS, MR, RR, CompleteRR, MIS, RIS, CompleteRIS}
}

// AllFamilies lists every family constructible by New: the permutation-graph
// baselines first, then the super Cayley classes in paper order.
func AllFamilies() []Family {
	return append([]Family{Star, Rotator, Pancake, BubbleSort, TranspositionNet, IS},
		AllSuperCayleyFamilies()...)
}

// ParseFamily resolves a family from its String() name (e.g. "MS",
// "complete-RIS", "bubble-sort") — the inverse of Family.String, shared by
// the CLI flag parsers and the scgd request decoder. The explicit switch
// (rather than a scan over AllFamilies, which allocates) keeps request
// decoding off the heap; TestParseFamilyRoundTrip pins the two in sync.
func ParseFamily(name string) (Family, error) {
	switch name {
	case "star":
		return Star, nil
	case "rotator":
		return Rotator, nil
	case "pancake":
		return Pancake, nil
	case "bubble-sort":
		return BubbleSort, nil
	case "transposition":
		return TranspositionNet, nil
	case "IS":
		return IS, nil
	case "MS":
		return MS, nil
	case "RS":
		return RS, nil
	case "complete-RS":
		return CompleteRS, nil
	case "MR":
		return MR, nil
	case "RR":
		return RR, nil
	case "complete-RR":
		return CompleteRR, nil
	case "MIS":
		return MIS, nil
	case "RIS":
		return RIS, nil
	case "complete-RIS":
		return CompleteRIS, nil
	default:
		return 0, fmt.Errorf("topology: ParseFamily: unknown family %q", name)
	}
}
