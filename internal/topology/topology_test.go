package topology

import (
	"testing"

	"repro/internal/perm"
)

// smallInstances enumerates every super Cayley instance with k <= maxK.
func smallInstances(t *testing.T, maxK int) []*Network {
	t.Helper()
	var nets []*Network
	for l := 2; l <= maxK; l++ {
		for n := 1; n*l+1 <= maxK; n++ {
			for _, fam := range AllSuperCayleyFamilies() {
				nw, err := New(fam, l, n)
				if err != nil {
					t.Fatalf("New(%v,%d,%d): %v", fam, l, n, err)
				}
				nets = append(nets, nw)
			}
		}
	}
	return nets
}

func TestConstructorsReportedParameters(t *testing.T) {
	nw, err := NewMS(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if nw.Family() != MS || nw.L() != 3 || nw.N() != 2 || nw.K() != 7 {
		t.Fatalf("MS(3,2): %v l=%d n=%d k=%d", nw.Family(), nw.L(), nw.N(), nw.K())
	}
	if nw.Nodes() != 5040 {
		t.Fatalf("Nodes = %d", nw.Nodes())
	}
	if nw.Name() != "MS(3,2)" {
		t.Fatalf("Name = %q", nw.Name())
	}
	if _, ok := nw.Rules(); !ok {
		t.Fatal("MS should be game-routed")
	}
	if !MS.IsSuperCayley() || Star.IsSuperCayley() {
		t.Fatal("IsSuperCayley misclassifies")
	}
}

func TestConstructorValidation(t *testing.T) {
	for _, f := range []func() error{
		func() error { _, err := NewStar(1); return err },
		func() error { _, err := NewRotator(1); return err },
		func() error { _, err := NewIS(1); return err },
		func() error { _, err := NewMS(1, 2); return err },
		func() error { _, err := NewMS(2, 0); return err },
		func() error { _, err := NewRR(1, 3); return err },
		func() error { _, err := New(Family(99), 2, 2); return err },
	} {
		if f() == nil {
			t.Error("invalid constructor call accepted")
		}
	}
}

// TestDegreeMatchesFormula checks Theorem-level degree accounting: the
// constructed graph's degree must equal the closed form for every family and
// parameter choice.
func TestDegreeMatchesFormula(t *testing.T) {
	for _, nw := range smallInstances(t, 9) {
		want, err := DegreeFormula(nw.Family(), nw.L(), nw.N())
		if err != nil {
			t.Fatalf("%s: %v", nw.Name(), err)
		}
		if nw.Degree() != want {
			t.Errorf("%s: degree %d, formula %d", nw.Name(), nw.Degree(), want)
		}
	}
	for k := 2; k <= 8; k++ {
		for _, mk := range []struct {
			fam Family
			f   func(int) (*Network, error)
		}{
			{Star, NewStar}, {Rotator, NewRotator}, {Pancake, NewPancake},
			{BubbleSort, NewBubbleSort}, {TranspositionNet, NewTranspositionNet}, {IS, NewIS},
		} {
			nw, err := mk.f(k)
			if err != nil {
				t.Fatal(err)
			}
			want, err := DegreeFormula(mk.fam, 1, k-1)
			if err != nil {
				t.Fatal(err)
			}
			if nw.Degree() != want {
				t.Errorf("%s: degree %d, formula %d", nw.Name(), nw.Degree(), want)
			}
		}
	}
}

// TestDirectedness checks §3.3's directed/undirected classification.
func TestDirectedness(t *testing.T) {
	undirected := map[Family]bool{
		MS: true, RS: true, CompleteRS: true,
		MIS: true, RIS: true, CompleteRIS: true,
		MR: false, RR: false, CompleteRR: false,
	}
	for _, nw := range smallInstances(t, 9) {
		want, ok := undirected[nw.Family()]
		if !ok {
			continue
		}
		// Degenerate exception: with n = 1 the insertion nucleus {I2} is the
		// self-inverse transposition T2, making MR/RR/complete-RR undirected.
		if nw.N() == 1 {
			continue
		}
		if nw.Undirected() != want {
			t.Errorf("%s: undirected=%v, want %v", nw.Name(), nw.Undirected(), want)
		}
	}
	for _, mk := range []struct {
		f    func(int) (*Network, error)
		want bool
	}{
		{NewStar, true}, {NewPancake, true}, {NewBubbleSort, true},
		{NewTranspositionNet, true}, {NewIS, true}, {NewRotator, false},
	} {
		nw, err := mk.f(5)
		if err != nil {
			t.Fatal(err)
		}
		if nw.Undirected() != mk.want {
			t.Errorf("%s: undirected=%v, want %v", nw.Name(), nw.Undirected(), mk.want)
		}
	}
}

// TestConnectivity: every instance must generate S_k (strongly connected).
func TestConnectivity(t *testing.T) {
	for _, nw := range smallInstances(t, 8) {
		if !nw.Graph().Connected() {
			t.Errorf("%s is not connected", nw.Name())
		}
	}
}

// TestExactDiameterWithinBounds computes exact BFS diameters for every
// instance with k <= 7 and checks them against the solver-derived upper
// bounds and, where the paper states a formula, the paper's bound.
func TestExactDiameterWithinBounds(t *testing.T) {
	maxK := 7
	if !testing.Short() {
		maxK = 8 // adds the (7,1) instances at 40320 nodes
	}
	for _, nw := range smallInstances(t, maxK) {
		d, err := nw.Graph().Diameter()
		if err != nil {
			t.Fatalf("%s: %v", nw.Name(), err)
		}
		ub := nw.DiameterUpperBound()
		if d > ub {
			t.Errorf("%s: exact diameter %d exceeds bound %d", nw.Name(), d, ub)
		}
		if paper, ok := PaperDiameterBound(nw.Family(), nw.L(), nw.N()); ok && d > paper {
			t.Errorf("%s: exact diameter %d exceeds the paper bound %d", nw.Name(), d, paper)
		}
		t.Logf("%s: exact diameter %d (our bound %d)", nw.Name(), d, ub)
	}
}

// TestMSWithN1IsStar: "For n = 1, the macro-star MS(l,1), macro-rotator
// RS(l,1), and macro-IS MIS(l,1) are all identical to an (l+1)-star graph"
// (§3.3.3). We verify the metric claim: same size, degree, and exact
// diameter.
func TestMSWithN1IsStar(t *testing.T) {
	for l := 2; l <= 6; l++ {
		star, err := NewStar(l + 1)
		if err != nil {
			t.Fatal(err)
		}
		wantD, err := star.Graph().Diameter()
		if err != nil {
			t.Fatal(err)
		}
		for _, mk := range []func(int, int) (*Network, error){NewMS, NewMR, NewMIS} {
			nw, err := mk(l, 1)
			if err != nil {
				t.Fatal(err)
			}
			if nw.Nodes() != star.Nodes() || nw.Degree() != star.Degree() {
				t.Errorf("%s: size/degree (%d,%d) vs star (%d,%d)",
					nw.Name(), nw.Nodes(), nw.Degree(), star.Nodes(), star.Degree())
			}
			d, err := nw.Graph().Diameter()
			if err != nil {
				t.Fatal(err)
			}
			if d != wantD {
				t.Errorf("%s: diameter %d, star(%d) has %d", nw.Name(), d, l+1, wantD)
			}
		}
	}
}

// TestRoutingRandomPairs validates Route on random source/destination pairs
// for every family, including the non-game baselines.
func TestRoutingRandomPairs(t *testing.T) {
	rng := perm.NewRNG(31)
	var nets []*Network
	nets = append(nets, smallInstances(t, 9)...)
	for _, mk := range []func(int) (*Network, error){
		NewStar, NewRotator, NewPancake, NewBubbleSort, NewTranspositionNet, NewIS,
	} {
		nw, err := mk(7)
		if err != nil {
			t.Fatal(err)
		}
		nets = append(nets, nw)
	}
	for _, nw := range nets {
		k := nw.K()
		for trial := 0; trial < 8; trial++ {
			src, dst := perm.Random(k, rng), perm.Random(k, rng)
			moves, err := nw.Route(src, dst)
			if err != nil {
				t.Fatalf("%s: Route: %v", nw.Name(), err)
			}
			if err := nw.VerifyRoute(src, dst, moves); err != nil {
				t.Fatalf("%s: %v", nw.Name(), err)
			}
			if len(moves) > nw.DiameterUpperBound() {
				t.Errorf("%s: route length %d > bound %d", nw.Name(), len(moves), nw.DiameterUpperBound())
			}
		}
	}
}

// TestRouteNeverBeatsBFS: the algorithmic route can never be shorter than
// the true shortest path, and for every pair its length stays within the
// diameter bound. Exact distances come from one BFS per source.
func TestRouteNeverBeatsBFS(t *testing.T) {
	rng := perm.NewRNG(37)
	for _, fam := range AllSuperCayleyFamilies() {
		nw, err := New(fam, 3, 2)
		if err != nil {
			t.Fatal(err)
		}
		k := nw.K()
		for trial := 0; trial < 5; trial++ {
			src := perm.Random(k, rng)
			fromSrc, err := nw.Graph().BFS(src)
			if err != nil {
				t.Fatal(err)
			}
			for inner := 0; inner < 10; inner++ {
				dst := perm.Random(k, rng)
				moves, err := nw.Route(src, dst)
				if err != nil {
					t.Fatal(err)
				}
				exact := int(fromSrc.Dist.At(dst.Rank()))
				if exact < 0 {
					t.Fatalf("%s: %v unreachable from %v", nw.Name(), dst, src)
				}
				if len(moves) < exact {
					t.Errorf("%s: route %v->%v has %d moves, below exact distance %d",
						nw.Name(), src, dst, len(moves), exact)
				}
			}
		}
	}
}

func TestVerifyRouteRejectsForeignMoves(t *testing.T) {
	ms, err := NewMS(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := NewRR(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := perm.NewRNG(5)
	src, dst := perm.Random(7, rng), perm.Random(7, rng)
	moves, err := rr.Route(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	usesInsertion := false
	for _, g := range moves {
		if g.Name() != "T2" && g.Name() != "I2" {
			usesInsertion = true
		}
	}
	if usesInsertion {
		if err := ms.VerifyRoute(src, dst, moves); err == nil {
			t.Error("MS accepted RR moves")
		}
	}
	if err := ms.VerifyRoute(src, dst, nil); err == nil {
		t.Error("empty route accepted for distinct src/dst")
	}
}

func TestNodesFormula(t *testing.T) {
	if NodesFormula(MS, 3, 2) != 5040 {
		t.Error("NodesFormula MS(3,2)")
	}
	if NodesFormula(Star, 1, 6) != 5040 {
		t.Error("NodesFormula star k=7")
	}
}

func TestFamilyStrings(t *testing.T) {
	fams := append(AllSuperCayleyFamilies(), Star, Rotator, Pancake, BubbleSort, TranspositionNet, IS)
	for _, f := range fams {
		if f.String() == "" {
			t.Errorf("family %d has empty name", f)
		}
	}
}

func TestParseFamilyRoundTrip(t *testing.T) {
	fams := AllFamilies()
	if len(fams) != 15 {
		t.Fatalf("AllFamilies lists %d families, want 15", len(fams))
	}
	for _, f := range fams {
		got, err := ParseFamily(f.String())
		if err != nil {
			t.Errorf("ParseFamily(%q): %v", f.String(), err)
			continue
		}
		if got != f {
			t.Errorf("ParseFamily(%q) = %v, want %v", f.String(), got, f)
		}
	}
	if _, err := ParseFamily("nope"); err == nil {
		t.Error("ParseFamily accepts an unknown name")
	}
	if _, err := ParseFamily(""); err == nil {
		t.Error("ParseFamily accepts an empty name")
	}
}
