package topology

import (
	"testing"

	"repro/internal/bag"
	"repro/internal/perm"
)

// TestSolverStretchAcrossFamilies quantifies routing quality: the game
// solvers' path lengths versus exact shortest paths, sampled at (3,2)
// (k = 7, N = 5040). The solvers are upper-bound algorithms, so stretch is
// >= 1; it must stay within a small constant at this size.
func TestSolverStretchAcrossFamilies(t *testing.T) {
	if testing.Short() {
		t.Skip("stretch measurement runs many BFS passes")
	}
	for _, fam := range AllSuperCayleyFamilies() {
		nw, err := New(fam, 3, 2)
		if err != nil {
			t.Fatal(err)
		}
		route := func(src, dst perm.Perm) (int, error) { return nw.RouteLen(src, dst) }
		st, err := nw.Graph().MeasureStretch(15, 21, route)
		if err != nil {
			t.Fatalf("%s: %v", nw.Name(), err)
		}
		if st.MeanStretch < 1 {
			t.Fatalf("%s: mean stretch %f < 1", nw.Name(), st.MeanStretch)
		}
		if st.MeanStretch > 2.5 {
			t.Errorf("%s: mean stretch %f too high for a usable router", nw.Name(), st.MeanStretch)
		}
		t.Logf("%s: mean stretch %.3f, max %.3f, optimal %d/%d",
			nw.Name(), st.MeanStretch, st.MaxStretch, st.Optimal, st.Pairs)
	}
}

// TestOptimalSolverMatchesBFS: the IDA* optimal game solver returns exactly
// the BFS graph distance for every sampled state of MS(2,2).
func TestOptimalSolverMatchesBFS(t *testing.T) {
	nw, err := NewMS(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	rules, ok := nw.Rules()
	if !ok {
		t.Fatal("no rules")
	}
	res, err := nw.Graph().BFS(perm.Identity(5))
	if err != nil {
		t.Fatal(err)
	}
	for r := int64(0); r < nw.Nodes(); r += 7 {
		u := perm.Unrank(5, r)
		opt, err := bag.SolveOptimal(rules, u, 0)
		if err != nil {
			t.Fatalf("%v: %v", u, err)
		}
		// Distance from u to identity: in the BFS-from-identity profile this
		// is Dist over the reverse graph; for the undirected MS they agree.
		exact := int(res.Dist.At(r))
		if len(opt) != exact {
			t.Errorf("%v: optimal solver %d, BFS distance %d", u, len(opt), exact)
		}
	}
}
