package topology

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// Baseline is one of the non-permutation reference topologies of Figures
// 4–6 and §4.3: hypercube, 2-D torus, 3-D torus, k-ary n-cube, and
// cube-connected cycles. Degree and diameter come from closed forms; small
// instances also expose an IndexGraph so the formulas can be cross-checked
// by BFS.
type Baseline struct {
	Name     string
	Nodes    int64
	Degree   int
	Diameter int
	// BisectionLinks is the number of links cut by a best bisection
	// (classical values; used in the Theorem 4.9 comparison).
	BisectionLinks int64
	graph          *core.IndexGraph
}

// Graph returns an explicit IndexGraph for the instance, or nil when the
// instance is formula-only (too large to enumerate).
func (b *Baseline) Graph() *core.IndexGraph { return b.graph }

func (b *Baseline) String() string {
	return fmt.Sprintf("%s: N=%d, degree=%d, diameter=%d", b.Name, b.Nodes, b.Degree, b.Diameter)
}

const maxExplicitBaselineNodes = 1 << 22

// NewHypercube returns the d-dimensional binary hypercube: N = 2^d nodes of
// degree d, diameter d, bisection N/2 links.
func NewHypercube(d int) (*Baseline, error) {
	if d < 1 || d > 62 {
		return nil, fmt.Errorf("topology: NewHypercube(%d): d out of range 1..62", d)
	}
	n := int64(1) << uint(d)
	b := &Baseline{
		Name:           fmt.Sprintf("hypercube(%d)", d),
		Nodes:          n,
		Degree:         d,
		Diameter:       d,
		BisectionLinks: n / 2,
	}
	if n <= maxExplicitBaselineNodes {
		b.graph = &core.IndexGraph{N: n, Out: func(u int64, visit func(int64)) {
			for bit := 0; bit < d; bit++ {
				visit(u ^ (1 << uint(bit)))
			}
		}}
	}
	return b, nil
}

// NewTorus2D returns an a×a 2-D torus (wrap-around mesh): degree 4,
// diameter 2⌊a/2⌋, bisection 2a links.
func NewTorus2D(a int) (*Baseline, error) {
	if a < 2 {
		return nil, fmt.Errorf("topology: NewTorus2D(%d): a must be >= 2", a)
	}
	return newKAryNCube(a, 2)
}

// NewTorus3D returns an a×a×a 3-D torus: degree 6, diameter 3⌊a/2⌋,
// bisection 2a² links.
func NewTorus3D(a int) (*Baseline, error) {
	if a < 2 {
		return nil, fmt.Errorf("topology: NewTorus3D(%d): a must be >= 2", a)
	}
	return newKAryNCube(a, 3)
}

// NewKAryNCube returns the k-ary n-cube: n dimensions of radix a, degree 2n
// (n for a = 2), diameter n⌊a/2⌋, bisection 2·a^{n-1} links (a^{n-1} for
// a = 2).
func NewKAryNCube(a, n int) (*Baseline, error) {
	if a < 2 || n < 1 {
		return nil, fmt.Errorf("topology: NewKAryNCube(%d,%d): need a >= 2, n >= 1", a, n)
	}
	return newKAryNCube(a, n)
}

func newKAryNCube(a, n int) (*Baseline, error) {
	nodes := int64(1)
	for i := 0; i < n; i++ {
		if nodes > (int64(1)<<56)/int64(a) {
			return nil, fmt.Errorf("topology: k-ary n-cube %d^%d too large", a, n)
		}
		nodes *= int64(a)
	}
	degree := 2 * n
	bisection := 2 * nodes / int64(a)
	if a == 2 {
		degree = n // +1 and -1 neighbors coincide
		bisection = nodes / int64(a)
	}
	name := fmt.Sprintf("%d-ary %d-cube", a, n)
	switch n {
	case 2:
		name = fmt.Sprintf("torus2d(%d)", a)
	case 3:
		name = fmt.Sprintf("torus3d(%d)", a)
	}
	b := &Baseline{
		Name:           name,
		Nodes:          nodes,
		Degree:         degree,
		Diameter:       n * (a / 2),
		BisectionLinks: bisection,
	}
	if nodes <= maxExplicitBaselineNodes {
		aa := int64(a)
		b.graph = &core.IndexGraph{N: nodes, Out: func(u int64, visit func(int64)) {
			base := int64(1)
			for dim := 0; dim < n; dim++ {
				digit := (u / base) % aa
				up := u - digit*base + ((digit+1)%aa)*base
				down := u - digit*base + ((digit+aa-1)%aa)*base
				visit(up)
				if down != up {
					visit(down)
				}
				base *= aa
			}
		}}
	}
	return b, nil
}

// NewCCC returns the cube-connected cycles network CCC(d): N = d·2^d nodes
// of degree 3, diameter 2d + ⌊d/2⌋ - 2 for d >= 4 (6 for d = 3, exactly
// computed for smaller d by BFS in tests).
func NewCCC(d int) (*Baseline, error) {
	if d < 3 {
		return nil, fmt.Errorf("topology: NewCCC(%d): d must be >= 3", d)
	}
	nodes := int64(d) << uint(d)
	diam := 2*d + d/2 - 2
	if d == 3 {
		diam = 6
	}
	b := &Baseline{
		Name:           fmt.Sprintf("ccc(%d)", d),
		Nodes:          nodes,
		Degree:         3,
		Diameter:       diam,
		BisectionLinks: int64(1) << uint(d-1),
	}
	if nodes <= maxExplicitBaselineNodes {
		dd := int64(d)
		// Node (cube, pos): index = cube*d + pos. Links: cycle +-1 and the
		// cube edge flipping bit pos.
		b.graph = &core.IndexGraph{N: nodes, Out: func(u int64, visit func(int64)) {
			cube, pos := u/dd, u%dd
			visit(cube*dd + (pos+1)%dd)
			visit(cube*dd + (pos+dd-1)%dd)
			visit((cube^(1<<uint(pos)))*dd + pos)
		}}
	}
	return b, nil
}

// BaselineAtSize returns the smallest instance of the named baseline family
// with at least `nodes` nodes. Family names: "hypercube", "torus2d",
// "torus3d", "ccc". It is used by the figure harness to plot baseline
// curves against super-Cayley sizes.
func BaselineAtSize(family string, nodes int64) (*Baseline, error) {
	if nodes < 2 {
		return nil, fmt.Errorf("topology: BaselineAtSize: need nodes >= 2")
	}
	switch family {
	case "hypercube":
		d := int(math.Ceil(math.Log2(float64(nodes))))
		if d < 1 {
			d = 1
		}
		return NewHypercube(d)
	case "torus2d":
		a := int(math.Ceil(math.Sqrt(float64(nodes))))
		if a < 2 {
			a = 2
		}
		return NewTorus2D(a)
	case "torus3d":
		a := int(math.Ceil(math.Cbrt(float64(nodes))))
		if a < 2 {
			a = 2
		}
		return NewTorus3D(a)
	case "ccc":
		for d := 3; d <= 40; d++ {
			if int64(d)<<uint(d) >= nodes {
				return NewCCC(d)
			}
		}
		return nil, fmt.Errorf("topology: BaselineAtSize: ccc with %d nodes too large", nodes)
	default:
		return nil, fmt.Errorf("topology: BaselineAtSize: unknown family %q", family)
	}
}
