package topology

import (
	"fmt"

	"repro/internal/bag"
	"repro/internal/gen"
	"repro/internal/perm"
)

// Route returns a legal move (link) sequence from node src to node dst: the
// generators, applied to src in order by right multiplication, end at dst.
// By vertex symmetry this reduces to solving the ball-arrangement game from
// configuration dst⁻¹ ∘ src to the identity.
func (nw *Network) Route(src, dst perm.Perm) ([]gen.Generator, error) {
	var sc RouteScratch
	return sc.RouteInto(nw, src, dst)
}

// RouteLen returns the length of the route our algorithms produce from src
// to dst (an upper bound on the true distance).
func (nw *Network) RouteLen(src, dst perm.Perm) (int, error) {
	moves, err := nw.Route(src, dst)
	if err != nil {
		return 0, err
	}
	return len(moves), nil
}

// VerifyRoute replays moves from src and checks that every move is one of
// the network's generators and that the walk ends at dst.
func (nw *Network) VerifyRoute(src, dst perm.Perm, moves []gen.Generator) error {
	var sc RouteScratch
	return sc.VerifyRouteInto(nw, src, dst, moves)
}

// routeRotationSubset routes in a rotation-subset network: solve the
// complete-rotation game, then expand each R^t into a word over the
// available exponents (§3.3.4).
func (nw *Network) routeRotationSubset(u perm.Perm) ([]gen.Generator, error) {
	moves, err := bag.Solve(nw.rules, u)
	if err != nil {
		return nil, err
	}
	var out []gen.Generator
	for _, m := range moves {
		if m.Kind() != gen.Rotation {
			out = append(out, m)
			continue
		}
		word, err := RotationExpansion(nw.l, m.Index(), nw.rotSubset)
		if err != nil {
			return nil, err
		}
		for _, e := range word {
			out = append(out, gen.NewRotation(e, nw.n))
		}
	}
	return out, nil
}

// routeRecursive routes in a recursive MS: solve the outer MS game, then
// expand every outer transposition into its inner-MS word (§3.3.4).
func (nw *Network) routeRecursive(u perm.Perm) ([]gen.Generator, error) {
	moves, err := bag.Solve(nw.rules, u)
	if err != nil {
		return nil, err
	}
	dict, err := nw.recursive.transpositionDictionary(nw.n)
	if err != nil {
		return nil, err
	}
	var out []gen.Generator
	for _, m := range moves {
		if m.Kind() != gen.Transposition {
			out = append(out, m)
			continue
		}
		word, ok := dict[m.Index()]
		if !ok {
			return nil, fmt.Errorf("topology: routeRecursive: no expansion for %s", m.Name())
		}
		out = append(out, word...)
	}
	return out, nil
}

// The baseline solvers (pancake prefix-reversal sort, bubble insertion
// sort, transposition cycle chasing) live on RouteScratch in scratch.go;
// Route reaches them through RouteInto.
