package topology

import (
	"fmt"

	"repro/internal/bag"
	"repro/internal/gen"
	"repro/internal/perm"
)

// Route returns a legal move (link) sequence from node src to node dst: the
// generators, applied to src in order by right multiplication, end at dst.
// By vertex symmetry this reduces to solving the ball-arrangement game from
// configuration dst⁻¹ ∘ src to the identity.
func (nw *Network) Route(src, dst perm.Perm) ([]gen.Generator, error) {
	k := nw.K()
	if len(src) != k || len(dst) != k {
		return nil, fmt.Errorf("topology: Route: node labels must have %d symbols", k)
	}
	if err := src.Validate(); err != nil {
		return nil, err
	}
	if err := dst.Validate(); err != nil {
		return nil, err
	}
	u := dst.Inverse().Compose(src)
	if nw.rotSubset != nil {
		return nw.routeRotationSubset(u)
	}
	if nw.recursive != nil {
		return nw.routeRecursive(u)
	}
	switch nw.family {
	case Star:
		return bag.SolveStar(u)
	case Rotator:
		return bag.SolveRotator(u)
	case Pancake:
		return solvePancake(u)
	case BubbleSort:
		return solveBubble(u)
	case TranspositionNet:
		return solveTranspositionNet(u)
	default:
		if !nw.hasRules {
			return nil, fmt.Errorf("topology: Route: no routing algorithm for %v", nw.family)
		}
		return bag.Solve(nw.rules, u)
	}
}

// RouteLen returns the length of the route our algorithms produce from src
// to dst (an upper bound on the true distance).
func (nw *Network) RouteLen(src, dst perm.Perm) (int, error) {
	moves, err := nw.Route(src, dst)
	if err != nil {
		return 0, err
	}
	return len(moves), nil
}

// VerifyRoute replays moves from src and checks that every move is one of
// the network's generators and that the walk ends at dst.
func (nw *Network) VerifyRoute(src, dst perm.Perm, moves []gen.Generator) error {
	k := nw.K()
	set := nw.graph.GeneratorSet()
	allowed := make(map[string]bool, set.Len())
	for _, g := range set.Generators() {
		allowed[g.AsPerm(k).String()] = true
	}
	cfg := src.Clone()
	for idx, g := range moves {
		if !allowed[g.AsPerm(k).String()] {
			return fmt.Errorf("topology: VerifyRoute: move %d (%s) is not a link of %s", idx, g, nw.Name())
		}
		g.Apply(cfg)
	}
	if !cfg.Equal(dst) {
		return fmt.Errorf("topology: VerifyRoute: walk ends at %v, want %v", cfg, dst)
	}
	return nil
}

// routeRotationSubset routes in a rotation-subset network: solve the
// complete-rotation game, then expand each R^t into a word over the
// available exponents (§3.3.4).
func (nw *Network) routeRotationSubset(u perm.Perm) ([]gen.Generator, error) {
	moves, err := bag.Solve(nw.rules, u)
	if err != nil {
		return nil, err
	}
	var out []gen.Generator
	for _, m := range moves {
		if m.Kind() != gen.Rotation {
			out = append(out, m)
			continue
		}
		word, err := RotationExpansion(nw.l, m.Index(), nw.rotSubset)
		if err != nil {
			return nil, err
		}
		for _, e := range word {
			out = append(out, gen.NewRotation(e, nw.n))
		}
	}
	return out, nil
}

// routeRecursive routes in a recursive MS: solve the outer MS game, then
// expand every outer transposition into its inner-MS word (§3.3.4).
func (nw *Network) routeRecursive(u perm.Perm) ([]gen.Generator, error) {
	moves, err := bag.Solve(nw.rules, u)
	if err != nil {
		return nil, err
	}
	dict, err := nw.recursive.transpositionDictionary(nw.n)
	if err != nil {
		return nil, err
	}
	var out []gen.Generator
	for _, m := range moves {
		if m.Kind() != gen.Transposition {
			out = append(out, m)
			continue
		}
		word, ok := dict[m.Index()]
		if !ok {
			return nil, fmt.Errorf("topology: routeRecursive: no expansion for %s", m.Name())
		}
		out = append(out, word...)
	}
	return out, nil
}

// solvePancake sorts u to the identity with prefix reversals: bring the
// largest misplaced symbol to the front, then flip it into place. At most
// 2k-3 moves.
func solvePancake(u perm.Perm) ([]gen.Generator, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	cfg := u.Clone()
	k := len(cfg)
	var moves []gen.Generator
	apply := func(i int) {
		g := gen.NewPrefixReversal(i)
		g.Apply(cfg)
		moves = append(moves, g)
	}
	for target := k; target >= 2; target-- {
		if cfg[target-1] == target {
			continue
		}
		pos := cfg.PositionOf(target)
		if pos != 1 {
			apply(pos)
		}
		apply(target)
	}
	if !cfg.IsIdentity() {
		return nil, fmt.Errorf("topology: solvePancake: ended at %v", cfg)
	}
	return moves, nil
}

// solveBubble sorts u to the identity with adjacent position swaps
// (insertion sort); at most k(k-1)/2 moves, which matches the bubble-sort
// graph diameter.
func solveBubble(u perm.Perm) ([]gen.Generator, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	cfg := u.Clone()
	var moves []gen.Generator
	for i := 1; i < len(cfg); i++ {
		for j := i; j >= 1 && cfg[j] < cfg[j-1]; j-- {
			g := gen.NewPositionSwap(j, j+1)
			g.Apply(cfg)
			moves = append(moves, g)
		}
	}
	if !cfg.IsIdentity() {
		return nil, fmt.Errorf("topology: solveBubble: ended at %v", cfg)
	}
	return moves, nil
}

// solveTranspositionNet sorts u with arbitrary position swaps (cycle
// chasing); the number of moves, k minus the number of cycles, is the exact
// graph distance in the transposition network.
func solveTranspositionNet(u perm.Perm) ([]gen.Generator, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	cfg := u.Clone()
	var moves []gen.Generator
	for pos := 1; pos <= len(cfg); pos++ {
		for cfg[pos-1] != pos {
			other := cfg.PositionOf(pos)
			g := gen.NewPositionSwap(pos, other)
			g.Apply(cfg)
			moves = append(moves, g)
		}
	}
	if !cfg.IsIdentity() {
		return nil, fmt.Errorf("topology: solveTranspositionNet: ended at %v", cfg)
	}
	return moves, nil
}
