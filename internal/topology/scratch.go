package topology

import (
	"fmt"

	"repro/internal/bag"
	"repro/internal/gen"
	"repro/internal/perm"
)

// RouteScratch is a reusable workspace for the allocation-free route path.
// After one warm-up call per network shape, RouteInto and VerifyRouteInto
// run without heap allocation for every family constructible by New; the
// rotation-subset and recursive extensions fall back to the allocating
// expansion path. Move slices returned by RouteInto alias the scratch and
// are valid only until the next call. Not safe for concurrent use.
type RouteScratch struct {
	bag   bag.Scratch
	inv   perm.Perm // dst⁻¹
	u     perm.Perm // dst⁻¹ ∘ src, the game configuration
	cfg   perm.Perm // replay buffer for local solvers and verification
	moves []gen.Generator
}

// NewRouteScratch returns an empty workspace; buffers grow on first use.
func NewRouteScratch() *RouteScratch { return &RouteScratch{} }

func (sc *RouteScratch) grow(k int) {
	if cap(sc.inv) < k {
		sc.inv = make(perm.Perm, k)
		sc.u = make(perm.Perm, k)
		sc.cfg = make(perm.Perm, k)
	}
	sc.inv = sc.inv[:k]
	sc.u = sc.u[:k]
	sc.cfg = sc.cfg[:k]
}

// RouteInto is the workspace-reusing form of Route: the returned moves alias
// sc and must be copied if retained past the next call.
func (sc *RouteScratch) RouteInto(nw *Network, src, dst perm.Perm) ([]gen.Generator, error) {
	k := nw.K()
	if len(src) != k || len(dst) != k {
		return nil, fmt.Errorf("topology: Route: node labels must have %d symbols", k)
	}
	if !src.Valid() {
		return nil, labelError(src)
	}
	if !dst.Valid() {
		return nil, labelError(dst)
	}
	sc.grow(k)
	// By vertex symmetry, routing src -> dst reduces to solving the game
	// from u = dst⁻¹ ∘ src: u[i] = inv[src[i]-1].
	for i, v := range dst {
		sc.inv[v-1] = i + 1
	}
	sc.inv.ComposeInto(src, sc.u)
	u := sc.u
	if nw.rotSubset != nil {
		return nw.routeRotationSubset(u)
	}
	if nw.recursive != nil {
		return nw.routeRecursive(u)
	}
	switch nw.family {
	case Star:
		return sc.bag.SolveStar(u)
	case Rotator:
		return sc.bag.SolveRotator(u)
	case Pancake:
		return sc.solvePancake(u)
	case BubbleSort:
		return sc.solveBubble(u)
	case TranspositionNet:
		return sc.solveTranspositionNet(u)
	default:
		if !nw.hasRules {
			return nil, fmt.Errorf("topology: Route: no routing algorithm for %v", nw.family)
		}
		return sc.bag.Solve(nw.rules, u)
	}
}

// VerifyRouteInto replays moves from src using sc's buffers and checks that
// every move is one of nw's links and that the walk ends at dst. Membership
// is decided by generator value first (covering every move our solvers
// emit) and by generator action as a fallback, matching VerifyRoute.
func (sc *RouteScratch) VerifyRouteInto(nw *Network, src, dst perm.Perm, moves []gen.Generator) error {
	k := nw.K()
	if len(src) != k || len(dst) != k {
		return fmt.Errorf("topology: VerifyRoute: node labels must have %d symbols", k)
	}
	sc.grow(k)
	cfg := sc.cfg
	copy(cfg, src)
	for idx, g := range moves {
		if !nw.allowed[g] && !nw.allowedPerm[g.AsPerm(k).String()] {
			return fmt.Errorf("topology: VerifyRoute: move %d (%s) is not a link of %s", idx, g, nw.Name())
		}
		g.Apply(cfg)
	}
	if !cfg.Equal(dst) {
		return fmt.Errorf("topology: VerifyRoute: walk ends at %v, want %v", cfg, dst)
	}
	return nil
}

// MoveName renders g in the paper's notation without allocating when g is
// one of nw's links (the common case for solver output).
func (nw *Network) MoveName(g gen.Generator) string {
	if name, ok := nw.names[g]; ok {
		return name
	}
	return g.Name()
}

// labelError reproduces Validate's error for a label that failed the
// allocation-free Valid check.
func labelError(p perm.Perm) error {
	if err := p.Validate(); err != nil {
		return err
	}
	return fmt.Errorf("topology: node label of %d symbols exceeds the 64-symbol limit", len(p))
}

// resetLocal primes cfg/moves for the baseline solvers below.
func (sc *RouteScratch) resetLocal(u perm.Perm) perm.Perm {
	copy(sc.cfg[:len(u)], u)
	sc.moves = sc.moves[:0]
	return sc.cfg[:len(u)]
}

// solvePancake is the scratch form of the package-level pancake solver.
func (sc *RouteScratch) solvePancake(u perm.Perm) ([]gen.Generator, error) {
	cfg := sc.resetLocal(u)
	k := len(cfg)
	apply := func(i int) {
		g := gen.NewPrefixReversal(i)
		g.Apply(cfg)
		sc.moves = append(sc.moves, g)
	}
	for target := k; target >= 2; target-- {
		if cfg[target-1] == target {
			continue
		}
		pos := cfg.PositionOf(target)
		if pos != 1 {
			apply(pos)
		}
		apply(target)
	}
	if !cfg.IsIdentity() {
		return nil, fmt.Errorf("topology: solvePancake: ended at %v", cfg)
	}
	return sc.moves, nil
}

// solveBubble is the scratch form of the package-level bubble-sort solver.
func (sc *RouteScratch) solveBubble(u perm.Perm) ([]gen.Generator, error) {
	cfg := sc.resetLocal(u)
	for i := 1; i < len(cfg); i++ {
		for j := i; j >= 1 && cfg[j] < cfg[j-1]; j-- {
			g := gen.NewPositionSwap(j, j+1)
			g.Apply(cfg)
			sc.moves = append(sc.moves, g)
		}
	}
	if !cfg.IsIdentity() {
		return nil, fmt.Errorf("topology: solveBubble: ended at %v", cfg)
	}
	return sc.moves, nil
}

// solveTranspositionNet is the scratch form of the package-level
// transposition-network solver.
func (sc *RouteScratch) solveTranspositionNet(u perm.Perm) ([]gen.Generator, error) {
	cfg := sc.resetLocal(u)
	for pos := 1; pos <= len(cfg); pos++ {
		for cfg[pos-1] != pos {
			other := cfg.PositionOf(pos)
			g := gen.NewPositionSwap(pos, other)
			g.Apply(cfg)
			sc.moves = append(sc.moves, g)
		}
	}
	if !cfg.IsIdentity() {
		return nil, fmt.Errorf("topology: solveTranspositionNet: ended at %v", cfg)
	}
	return sc.moves, nil
}
