package topology

import "testing"

// TestHypercubeFormulaVsBFS cross-checks closed forms with BFS on explicit
// instances.
func TestHypercubeFormulaVsBFS(t *testing.T) {
	for d := 1; d <= 10; d++ {
		h, err := NewHypercube(d)
		if err != nil {
			t.Fatal(err)
		}
		if h.Nodes != int64(1)<<uint(d) || h.Degree != d {
			t.Fatalf("hypercube(%d): N=%d degree=%d", d, h.Nodes, h.Degree)
		}
		got, err := h.Graph().DiameterExact()
		if err != nil {
			t.Fatal(err)
		}
		if got != h.Diameter {
			t.Errorf("hypercube(%d): BFS diameter %d, formula %d", d, got, h.Diameter)
		}
	}
}

func TestTorusFormulaVsBFS(t *testing.T) {
	for a := 2; a <= 9; a++ {
		tor, err := NewTorus2D(a)
		if err != nil {
			t.Fatal(err)
		}
		got, err := tor.Graph().DiameterExact()
		if err != nil {
			t.Fatal(err)
		}
		if got != tor.Diameter {
			t.Errorf("torus2d(%d): BFS %d, formula %d", a, got, tor.Diameter)
		}
		wantDeg := 4
		if a == 2 {
			wantDeg = 2
		}
		if tor.Degree != wantDeg {
			t.Errorf("torus2d(%d): degree %d", a, tor.Degree)
		}
	}
	for a := 2; a <= 6; a++ {
		tor, err := NewTorus3D(a)
		if err != nil {
			t.Fatal(err)
		}
		got, err := tor.Graph().DiameterExact()
		if err != nil {
			t.Fatal(err)
		}
		if got != tor.Diameter {
			t.Errorf("torus3d(%d): BFS %d, formula %d", a, got, tor.Diameter)
		}
	}
}

func TestKAryNCubeFormulaVsBFS(t *testing.T) {
	cases := []struct{ a, n int }{{2, 4}, {3, 3}, {4, 3}, {5, 2}, {2, 8}}
	for _, c := range cases {
		kc, err := NewKAryNCube(c.a, c.n)
		if err != nil {
			t.Fatal(err)
		}
		got, err := kc.Graph().DiameterExact()
		if err != nil {
			t.Fatal(err)
		}
		if got != kc.Diameter {
			t.Errorf("%d-ary %d-cube: BFS %d, formula %d", c.a, c.n, got, kc.Diameter)
		}
	}
	// Radix-2 k-ary n-cube degenerates to the hypercube.
	kc, err := NewKAryNCube(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if kc.Degree != 5 || kc.Diameter != 5 {
		t.Errorf("2-ary 5-cube: degree %d diameter %d, want 5/5", kc.Degree, kc.Diameter)
	}
}

func TestCCCFormulaVsBFS(t *testing.T) {
	for d := 3; d <= 6; d++ {
		c, err := NewCCC(d)
		if err != nil {
			t.Fatal(err)
		}
		if c.Nodes != int64(d)<<uint(d) || c.Degree != 3 {
			t.Fatalf("ccc(%d): N=%d degree=%d", d, c.Nodes, c.Degree)
		}
		// CCC is vertex-transitive; BFS from node 0 gives the diameter.
		got, err := c.Graph().DiameterExact()
		if err != nil {
			t.Fatal(err)
		}
		if got != c.Diameter {
			t.Errorf("ccc(%d): BFS diameter %d, formula %d", d, got, c.Diameter)
		}
	}
}

func TestBaselineValidation(t *testing.T) {
	if _, err := NewHypercube(0); err == nil {
		t.Error("hypercube d=0 accepted")
	}
	if _, err := NewHypercube(63); err == nil {
		t.Error("hypercube d=63 accepted")
	}
	if _, err := NewTorus2D(1); err == nil {
		t.Error("torus2d(1) accepted")
	}
	if _, err := NewCCC(2); err == nil {
		t.Error("ccc(2) accepted")
	}
	if _, err := NewKAryNCube(1, 2); err == nil {
		t.Error("1-ary cube accepted")
	}
}

func TestBaselineAtSize(t *testing.T) {
	cases := []struct {
		family string
		nodes  int64
	}{
		{"hypercube", 5000}, {"torus2d", 5000}, {"torus3d", 5000}, {"ccc", 5000},
	}
	for _, c := range cases {
		b, err := BaselineAtSize(c.family, c.nodes)
		if err != nil {
			t.Fatalf("%s: %v", c.family, err)
		}
		if b.Nodes < c.nodes {
			t.Errorf("%s at %d gave only %d nodes", c.family, c.nodes, b.Nodes)
		}
	}
	if _, err := BaselineAtSize("pyramid", 100); err == nil {
		t.Error("unknown family accepted")
	}
	if _, err := BaselineAtSize("hypercube", 1); err == nil {
		t.Error("size 1 accepted")
	}
	// The chosen instance should not be grossly oversized for power families.
	h, err := BaselineAtSize("hypercube", 1025)
	if err != nil {
		t.Fatal(err)
	}
	if h.Nodes != 2048 {
		t.Errorf("hypercube at 1025 nodes = %d, want 2048", h.Nodes)
	}
}

func TestBaselineStringer(t *testing.T) {
	h, err := NewHypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	if h.String() == "" {
		t.Error("empty String")
	}
	if h.BisectionLinks != 8 {
		t.Errorf("hypercube(4) bisection %d, want 8", h.BisectionLinks)
	}
}
