package topology

import "testing"

// TestBoundFormulaMatchesInstanceBound: the standalone formula evaluator
// must agree with the bound computed from a constructed instance, for every
// family and parameter choice.
func TestBoundFormulaMatchesInstanceBound(t *testing.T) {
	for _, nw := range smallInstances(t, 9) {
		want, err := DiameterUpperBoundFormula(nw.Family(), nw.L(), nw.N())
		if err != nil {
			t.Fatalf("%s: %v", nw.Name(), err)
		}
		if got := nw.DiameterUpperBound(); got != want {
			t.Errorf("%s: instance bound %d != formula %d", nw.Name(), got, want)
		}
	}
	for k := 2; k <= 8; k++ {
		cases := []struct {
			fam Family
			mk  func(int) (*Network, error)
		}{
			{Star, NewStar}, {Rotator, NewRotator}, {Pancake, NewPancake},
			{BubbleSort, NewBubbleSort}, {TranspositionNet, NewTranspositionNet}, {IS, NewIS},
		}
		for _, c := range cases {
			nw, err := c.mk(k)
			if err != nil {
				t.Fatal(err)
			}
			want, err := DiameterUpperBoundFormula(c.fam, 1, k-1)
			if err != nil {
				t.Fatal(err)
			}
			if got := nw.DiameterUpperBound(); got != want {
				t.Errorf("%s: instance bound %d != formula %d", nw.Name(), got, want)
			}
		}
	}
	if _, err := DiameterUpperBoundFormula(Family(99), 2, 2); err == nil {
		t.Error("unknown family accepted")
	}
	if _, err := DegreeFormula(Family(99), 2, 2); err == nil {
		t.Error("unknown family accepted by DegreeFormula")
	}
}

// TestExactBaselineDiameters: known exact diameters of the permutation
// baselines at small k (bubble-sort: k(k-1)/2; transposition network: k -
// #cycles max = k-1; pancake: known values 1,3,4,5,7,8 for k=2..7).
func TestExactBaselineDiameters(t *testing.T) {
	pancakeDiam := map[int]int{2: 1, 3: 3, 4: 4, 5: 5, 6: 7, 7: 8}
	for k := 2; k <= 7; k++ {
		bub, err := NewBubbleSort(k)
		if err != nil {
			t.Fatal(err)
		}
		d, err := bub.Graph().Diameter()
		if err != nil {
			t.Fatal(err)
		}
		if d != k*(k-1)/2 {
			t.Errorf("bubble(%d) diameter %d, want %d", k, d, k*(k-1)/2)
		}
		tn, err := NewTranspositionNet(k)
		if err != nil {
			t.Fatal(err)
		}
		d, err = tn.Graph().Diameter()
		if err != nil {
			t.Fatal(err)
		}
		if d != k-1 {
			t.Errorf("transposition(%d) diameter %d, want %d", k, d, k-1)
		}
		pan, err := NewPancake(k)
		if err != nil {
			t.Fatal(err)
		}
		d, err = pan.Graph().Diameter()
		if err != nil {
			t.Fatal(err)
		}
		if d != pancakeDiam[k] {
			t.Errorf("pancake(%d) diameter %d, want %d", k, d, pancakeDiam[k])
		}
	}
}

// TestISExactDiameters records the IS network's exact diameters — the §3.3.3
// claim that IS-based networks have diameters "optimal within a factor of
// 1 + o(1)".
func TestISExactDiameters(t *testing.T) {
	for k := 3; k <= 7; k++ {
		nw, err := NewIS(k)
		if err != nil {
			t.Fatal(err)
		}
		d, err := nw.Graph().Diameter()
		if err != nil {
			t.Fatal(err)
		}
		if d > nw.DiameterUpperBound() {
			t.Errorf("IS(%d) diameter %d above bound %d", k, d, nw.DiameterUpperBound())
		}
		// IS contains the rotator as a subgraph, so its diameter is at most
		// the rotator's k-1.
		if d > k-1 {
			t.Errorf("IS(%d) diameter %d above rotator diameter %d", k, d, k-1)
		}
		t.Logf("IS(%d): exact diameter %d", k, d)
	}
}
