package topology

import (
	"fmt"

	"repro/internal/bag"
	"repro/internal/perm"
)

// DegreeFormula returns the closed-form node degree of a family instance
// without building the graph. It matches Network.Degree() exactly (verified
// by tests) and is what the Figure 4 harness evaluates at sizes beyond
// exhaustive reach.
func DegreeFormula(fam Family, l, n int) (int, error) {
	k := n*l + 1
	switch fam {
	case Star, Rotator, Pancake:
		return n, nil // k-dimensional with k = n+1: degree k-1 = n
	case BubbleSort:
		return n, nil
	case TranspositionNet:
		return (n + 1) * n / 2, nil
	case IS:
		// I_2..I_k plus I_2'..I_k' with I_2' = I_2: 2(k-1) - 1.
		if n == 1 {
			return 1, nil
		}
		return 2*n - 1, nil
	case MS, CompleteRS, MR, CompleteRR:
		if err := checkLN(fam, l, n); err != nil {
			return 0, err
		}
		return n + l - 1, nil
	case RS:
		if err := checkLN(fam, l, n); err != nil {
			return 0, err
		}
		if l == 2 {
			return n + 1, nil // R = R^{-1}
		}
		return n + 2, nil
	case RR:
		if err := checkLN(fam, l, n); err != nil {
			return 0, err
		}
		return n + 1, nil
	case MIS, CompleteRIS:
		if err := checkLN(fam, l, n); err != nil {
			return 0, err
		}
		return nucleusISCount(n) + l - 1, nil
	case RIS:
		if err := checkLN(fam, l, n); err != nil {
			return 0, err
		}
		if l == 2 {
			return nucleusISCount(n) + 1, nil
		}
		return nucleusISCount(n) + 2, nil
	default:
		return 0, fmt.Errorf("topology: DegreeFormula: unknown family %v (k=%d)", fam, k)
	}
}

// nucleusISCount is the number of distinct insertion+selection generators on
// an (n+1)-symbol nucleus: I_2..I_{n+1} and I_2'..I_{n+1}' with I_2' = I_2.
func nucleusISCount(n int) int {
	if n == 1 {
		return 1
	}
	return 2*n - 1
}

// DiameterUpperBound returns the best diameter upper bound this repository's
// routing algorithms guarantee for the instance. For MS this is the paper's
// Balls-to-Boxes bound (§2.1); for star the AHK bound ⌊3(k-1)/2⌋; for
// rotator the Corbett bound k-1; the remaining families use the §2.2–2.3
// move accounting implemented in internal/bag.
func (nw *Network) DiameterUpperBound() int {
	k := nw.K()
	switch nw.family {
	case Star:
		return 3 * (k - 1) / 2
	case Rotator:
		return k - 1
	case Pancake:
		return 2*k - 3
	case BubbleSort:
		return k * (k - 1) / 2
	case TranspositionNet:
		return k - 1
	default:
		if nw.rotSubset != nil {
			// Each complete-rotation move expands to at most maxExp subset
			// rotations.
			maxExp := 1
			for t := 1; t < nw.l; t++ {
				word, err := RotationExpansion(nw.l, t, nw.rotSubset)
				if err == nil && len(word) > maxExp {
					maxExp = len(word)
				}
			}
			return bag.WorstCaseBound(nw.rules) * maxExp
		}
		if nw.recursive != nil {
			dil, err := nw.RecursiveDilation()
			if err != nil || dil < 1 {
				dil = 1
			}
			return bag.WorstCaseBound(nw.rules) * dil
		}
		if nw.hasRules {
			return bag.WorstCaseBound(nw.rules)
		}
		panic(fmt.Sprintf("topology: DiameterUpperBound: no bound for %v", nw.family))
	}
}

// DiameterUpperBoundFormula evaluates the bound without building the
// network; it is used by the figure harness at arbitrary (l,n).
func DiameterUpperBoundFormula(fam Family, l, n int) (int, error) {
	k := n*l + 1
	switch fam {
	case Star:
		k = n + 1
		return 3 * (k - 1) / 2, nil
	case Rotator:
		return n, nil // k-1 with k = n+1
	case Pancake:
		return 2*n - 1, nil
	case BubbleSort:
		return (n + 1) * n / 2, nil
	case TranspositionNet:
		return n, nil
	case IS:
		return n + 2, nil // one-box insertion bound k+1, k = n+1
	}
	var rules bag.Rules
	ly, err := bag.NewLayout(l, n)
	if err != nil {
		return 0, err
	}
	switch fam {
	case MS:
		rules = bag.Rules{Layout: ly, Nucleus: bag.TranspositionNucleus, Super: bag.SwapSuper}
	case RS:
		rules = bag.Rules{Layout: ly, Nucleus: bag.TranspositionNucleus, Super: bag.RotPairSuper}
	case CompleteRS:
		rules = bag.Rules{Layout: ly, Nucleus: bag.TranspositionNucleus, Super: bag.RotCompleteSuper}
	case MR:
		rules = bag.Rules{Layout: ly, Nucleus: bag.InsertionNucleus, Super: bag.SwapSuper}
	case RR:
		rules = bag.Rules{Layout: ly, Nucleus: bag.InsertionNucleus, Super: bag.RotSingleSuper}
	case CompleteRR:
		rules = bag.Rules{Layout: ly, Nucleus: bag.InsertionNucleus, Super: bag.RotCompleteSuper}
	case MIS:
		rules = bag.Rules{Layout: ly, Nucleus: bag.InsertionNucleus, Super: bag.SwapSuper}
	case RIS:
		rules = bag.Rules{Layout: ly, Nucleus: bag.InsertionNucleus, Super: bag.RotPairSuper}
	case CompleteRIS:
		rules = bag.Rules{Layout: ly, Nucleus: bag.InsertionNucleus, Super: bag.RotCompleteSuper}
	default:
		return 0, fmt.Errorf("topology: DiameterUpperBoundFormula: unknown family %v (k=%d)", fam, k)
	}
	return bag.WorstCaseBound(rules), nil
}

// PaperDiameterBound evaluates the diameter upper-bound formulas stated in
// the paper's theorems, where given:
//
//   - Theorem 4.1: complete-RS(l,n) ≤ ⌊2.5k⌋ + l - 4
//   - Theorem 4.2 (from [32]): MS(l,n) ≤ ⌊2.5nl⌋ + l - 1 + ⌊1.5(l-1)⌋
//   - star graph (AHK):       ⌊3(k-1)/2⌋
//   - rotator (Corbett):      k - 1
//
// The second return value is false for families whose printed formula did
// not survive in the paper text (Theorem 4.3's right-hand sides are
// unreadable in the source scan); callers fall back to
// DiameterUpperBoundFormula for those.
func PaperDiameterBound(fam Family, l, n int) (int, bool) {
	k := n*l + 1
	switch fam {
	case Star:
		return 3 * n / 2, true // k = n+1
	case Rotator:
		return n, true
	case MS:
		return 5*n*l/2 + l - 1 + 3*(l-1)/2, true
	case CompleteRS:
		b := 5*k/2 + l - 4
		if b < 1 {
			b = 1
		}
		return b, true
	default:
		return 0, false
	}
}

// NodesFormula returns the network size for a family instance: (n·l+1)! for
// super Cayley families and (n+1)! for nucleus-only families.
func NodesFormula(fam Family, l, n int) int64 {
	switch fam {
	case Star, Rotator, Pancake, BubbleSort, TranspositionNet, IS:
		return perm.Factorial(n + 1)
	default:
		return perm.Factorial(n*l + 1)
	}
}
