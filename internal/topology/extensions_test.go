package topology

import (
	"testing"

	"repro/internal/perm"
)

func TestRotationExpansion(t *testing.T) {
	// Z_5 with exponents {2}: 1 = 2+2+2 mod 5 (three steps), 4 = 2+2.
	word, err := RotationExpansion(5, 4, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(word) != 2 {
		t.Fatalf("expansion %v", word)
	}
	// Sum check for random cases.
	cases := []struct {
		l    int
		exps []int
	}{
		{5, []int{2}}, {6, []int{1}}, {6, []int{1, 5}}, {7, []int{3, 5}}, {8, []int{1, 2, 3}},
	}
	for _, c := range cases {
		for tt := 0; tt < c.l; tt++ {
			word, err := RotationExpansion(c.l, tt, c.exps)
			if err != nil {
				t.Fatalf("l=%d t=%d exps=%v: %v", c.l, tt, c.exps, err)
			}
			sum := 0
			for _, e := range word {
				sum += e
			}
			if sum%c.l != tt%c.l {
				t.Fatalf("l=%d t=%d: word %v sums to %d", c.l, tt, word, sum)
			}
		}
	}
	// Unreachable: exponents sharing a factor with l.
	if _, err := RotationExpansion(6, 1, []int{2, 4}); err == nil {
		t.Error("non-generating exponent set accepted by expansion")
	}
	// Zero rotation needs no moves.
	if w, err := RotationExpansion(4, 0, []int{1}); err != nil || len(w) != 0 {
		t.Error("t=0 expansion")
	}
}

func TestRotationSubsetStarValidation(t *testing.T) {
	if _, err := NewRotationSubsetStar(5, 1, nil); err == nil {
		t.Error("empty exponents accepted")
	}
	if _, err := NewRotationSubsetStar(5, 1, []int{0}); err == nil {
		t.Error("exponent 0 accepted")
	}
	if _, err := NewRotationSubsetStar(5, 1, []int{5}); err == nil {
		t.Error("exponent l accepted")
	}
	if _, err := NewRotationSubsetStar(5, 1, []int{2, 2}); err == nil {
		t.Error("duplicate exponent accepted")
	}
	if _, err := NewRotationSubsetStar(6, 1, []int{2, 4}); err == nil {
		t.Error("non-generating exponents accepted")
	}
	if _, err := NewRotationSubsetStar(1, 1, []int{1}); err == nil {
		t.Error("l=1 accepted")
	}
}

func TestRotationSubsetStarSpansRSToCompleteRS(t *testing.T) {
	// Exponents {1,4} ~ RS(5,1); {1,2,3,4} ~ complete-RS(5,1).
	rsLike, err := NewRotationSubsetStar(5, 1, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	complete, err := NewRotationSubsetStar(5, 1, []int{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := NewRS(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	crs, err := NewCompleteRS(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	dRSLike, err := rsLike.Graph().Diameter()
	if err != nil {
		t.Fatal(err)
	}
	dRS, err := rs.Graph().Diameter()
	if err != nil {
		t.Fatal(err)
	}
	if dRSLike != dRS {
		t.Errorf("subset {1,4} diameter %d != RS diameter %d", dRSLike, dRS)
	}
	dComplete, err := complete.Graph().Diameter()
	if err != nil {
		t.Fatal(err)
	}
	dCRS, err := crs.Graph().Diameter()
	if err != nil {
		t.Fatal(err)
	}
	if dComplete != dCRS {
		t.Errorf("full subset diameter %d != complete-RS diameter %d", dComplete, dCRS)
	}
	// An in-between subset: degree and diameter fall between the extremes.
	mid, err := NewRotationSubsetStar(5, 1, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	dMid, err := mid.Graph().Diameter()
	if err != nil {
		t.Fatal(err)
	}
	if !(mid.Degree() >= rs.Degree() && mid.Degree() <= crs.Degree()) {
		t.Errorf("mid degree %d outside [%d, %d]", mid.Degree(), rs.Degree(), crs.Degree())
	}
	if dMid > dRS || dMid < dCRS {
		t.Errorf("mid diameter %d outside [complete %d, RS %d]", dMid, dCRS, dRS)
	}
}

func TestRotationSubsetRouting(t *testing.T) {
	nw, err := NewRotationSubsetStar(5, 2, []int{2}) // k = 11, only R^2
	if err != nil {
		t.Fatal(err)
	}
	rng := perm.NewRNG(13)
	for trial := 0; trial < 20; trial++ {
		src, dst := perm.Random(11, rng), perm.Random(11, rng)
		moves, err := nw.Route(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		if err := nw.VerifyRoute(src, dst, moves); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRecursiveMSConstruction(t *testing.T) {
	// recursive-MS(2;2,1): n = 2, k = 5; generators T2, S_{2,1}, S_{2,2}.
	nw, err := NewRecursiveMS(2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if nw.K() != 5 {
		t.Fatalf("k = %d", nw.K())
	}
	if nw.Degree() != 3 { // 1 + 1 + 1
		t.Errorf("degree %d, want 3", nw.Degree())
	}
	if !nw.Graph().Connected() {
		t.Error("recursive MS disconnected")
	}
	// Degree saving vs flat MS(2,2): same size, one fewer generator? MS(2,2)
	// has degree 3 too (n+l-1 = 3); use a bigger case to see the saving.
	big, err := NewRecursiveMS(2, 2, 2) // n = 4, k = 9, degree 2+1+1 = 4
	if err != nil {
		t.Fatal(err)
	}
	flat, err := NewMS(2, 4) // degree 4+1 = 5
	if err != nil {
		t.Fatal(err)
	}
	if big.Degree() >= flat.Degree() {
		t.Errorf("recursive degree %d not below flat %d", big.Degree(), flat.Degree())
	}
	if _, err := NewRecursiveMS(1, 2, 1); err == nil {
		t.Error("l=1 accepted")
	}
	if _, err := NewRecursiveMS(2, 1, 2); err == nil {
		t.Error("l1=1 accepted")
	}
}

func TestRecursiveMSRouting(t *testing.T) {
	nw, err := NewRecursiveMS(2, 2, 2) // k = 9
	if err != nil {
		t.Fatal(err)
	}
	rng := perm.NewRNG(17)
	longest := 0
	for trial := 0; trial < 25; trial++ {
		src, dst := perm.Random(9, rng), perm.Random(9, rng)
		moves, err := nw.Route(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		if err := nw.VerifyRoute(src, dst, moves); err != nil {
			t.Fatal(err)
		}
		if len(moves) > longest {
			longest = len(moves)
		}
	}
	dil, err := nw.RecursiveDilation()
	if err != nil {
		t.Fatal(err)
	}
	if dil < 1 {
		t.Fatalf("dilation %d", dil)
	}
	// Expanded routes are bounded by the flat bound times the dilation plus
	// the unexpanded super moves.
	flatBound := nw.DiameterUpperBound()
	if longest > flatBound*dil {
		t.Errorf("recursive route %d exceeds %d x %d", longest, flatBound, dil)
	}
	// Identity routes stay empty.
	moves, err := nw.Route(perm.Identity(9), perm.Identity(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 0 {
		t.Errorf("identity route has %d moves", len(moves))
	}
}

func TestRecursiveDilationRequiresRecursive(t *testing.T) {
	nw, err := NewMS(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.RecursiveDilation(); err == nil {
		t.Error("non-recursive network accepted")
	}
}

// TestRecursiveMSExactDiameter measures the small recursive instance
// exactly and confirms it stays within the expanded-route bound.
func TestRecursiveMSExactDiameter(t *testing.T) {
	nw, err := NewRecursiveMS(2, 2, 1) // k = 5
	if err != nil {
		t.Fatal(err)
	}
	d, err := nw.Graph().Diameter()
	if err != nil {
		t.Fatal(err)
	}
	dil, err := nw.RecursiveDilation()
	if err != nil {
		t.Fatal(err)
	}
	if d > nw.DiameterUpperBound()*dil {
		t.Errorf("diameter %d above expanded bound", d)
	}
	t.Logf("recursive-MS(2;2,1): exact diameter %d, dilation %d", d, dil)
}
