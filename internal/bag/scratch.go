package bag

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/perm"
)

// Scratch is a reusable solver workspace. After a warm-up call per game
// shape, its Solve* methods run without heap allocation, which is what lets
// the /v1/route handler answer steady-state requests at 0 allocs/op.
//
// The move slices returned by Scratch methods alias the workspace: they are
// valid only until the next call on the same Scratch and must be copied if
// retained. A Scratch is not safe for concurrent use; pool instances
// instead.
type Scratch struct {
	st   state
	best []gen.Generator
}

// reset rebinds the embedded state to (rules, u, offset), growing buffers
// only when a larger game than any seen before arrives.
func (sc *Scratch) reset(rules Rules, u perm.Perm, offset int) *state {
	s := &sc.st
	s.rules = rules
	k := len(u)
	if cap(s.cfg) < k {
		s.cfg = make(perm.Perm, k)
	}
	s.cfg = s.cfg[:k]
	copy(s.cfg, u)
	l := rules.Layout.L
	if cap(s.boxColor) < l {
		s.boxColor = make([]int, l)
	}
	s.boxColor = s.boxColor[:l]
	for j := 1; j <= l; j++ {
		s.boxColor[j-1] = (j-1+offset)%l + 1
	}
	s.moves = s.moves[:0]
	return s
}

// validatePerm is the hot-path stand-in for perm.Validate: the boolean check
// is allocation-free and the error is constructed only on failure.
func validatePerm(u perm.Perm) error {
	if u.Valid() {
		return nil
	}
	if err := u.Validate(); err != nil {
		return err
	}
	return fmt.Errorf("bag: configuration of %d symbols exceeds the 64-symbol limit", len(u))
}

// SolveWithOffset is the workspace-reusing form of the package-level
// SolveWithOffset. The returned slice aliases the Scratch.
func (sc *Scratch) SolveWithOffset(rules Rules, u perm.Perm, offset int) ([]gen.Generator, error) {
	if err := rules.Validate(); err != nil {
		return nil, err
	}
	if len(u) != rules.Layout.K() {
		return nil, fmt.Errorf("bag: Solve: configuration has %d balls, layout wants %d", len(u), rules.Layout.K())
	}
	if err := validatePerm(u); err != nil {
		return nil, err
	}
	rotational := rules.Super == RotSingleSuper || rules.Super == RotPairSuper || rules.Super == RotCompleteSuper
	if offset != 0 && !rotational {
		return nil, fmt.Errorf("bag: Solve: offset %d requires a rotation super style", offset)
	}
	if offset < 0 || (rotational && offset >= rules.Layout.L) {
		return nil, fmt.Errorf("bag: Solve: offset %d out of range 0..%d", offset, rules.Layout.L-1)
	}
	s := sc.reset(rules, u, offset)
	switch rules.Nucleus {
	case TranspositionNucleus:
		s.solveTransposition()
	case InsertionNucleus:
		s.solveInsertion()
	default:
		return nil, fmt.Errorf("bag: Solve: unknown nucleus style %v", rules.Nucleus)
	}
	if !s.cfg.IsIdentity() {
		return nil, fmt.Errorf("bag: Solve: internal error: final configuration %v is not the identity", s.cfg)
	}
	return s.moves, nil
}

// Solve is the workspace-reusing form of the package-level Solve. The
// returned slice aliases the Scratch.
func (sc *Scratch) Solve(rules Rules, u perm.Perm) ([]gen.Generator, error) {
	rotational := rules.Super == RotSingleSuper || rules.Super == RotPairSuper || rules.Super == RotCompleteSuper
	if !rotational {
		return sc.SolveWithOffset(rules, u, 0)
	}
	found := false
	for b := 0; b < rules.Layout.L; b++ {
		moves, err := sc.SolveWithOffset(rules, u, b)
		if err != nil {
			return nil, err
		}
		if !found || len(moves) < len(sc.best) {
			sc.best = append(sc.best[:0], moves...)
			found = true
		}
	}
	return sc.best, nil
}

// SolveStar is the workspace-reusing form of the package-level SolveStar.
// The returned slice aliases the Scratch.
func (sc *Scratch) SolveStar(u perm.Perm) ([]gen.Generator, error) {
	if err := validatePerm(u); err != nil {
		return nil, err
	}
	s := &sc.st
	k := len(u)
	if cap(s.cfg) < k {
		s.cfg = make(perm.Perm, k)
	}
	s.cfg = s.cfg[:k]
	copy(s.cfg, u)
	s.moves = s.moves[:0]
	cfg := s.cfg
	apply := func(i int) {
		g := gen.NewTransposition(i)
		g.Apply(cfg)
		s.moves = append(s.moves, g)
	}
	for !cfg.IsIdentity() {
		if x := cfg[0]; x != 1 {
			apply(x) // send the leftmost ball home, ejecting the occupant
		} else {
			for i := 2; i <= k; i++ {
				if cfg[i-1] != i {
					apply(i) // pull any misplaced ball to the front
					break
				}
			}
		}
	}
	return s.moves, nil
}

// SolveRotator is the workspace-reusing form of the package-level
// SolveRotator. The returned slice aliases the Scratch.
func (sc *Scratch) SolveRotator(u perm.Perm) ([]gen.Generator, error) {
	if len(u) < 2 {
		if err := validatePerm(u); err != nil {
			return nil, err
		}
		return nil, nil
	}
	rules := Rules{Layout: MustLayout(1, len(u)-1), Nucleus: InsertionNucleus, Super: NoSuper}
	return sc.Solve(rules, u)
}
