package bag

import (
	"fmt"
	"strings"

	"repro/internal/gen"
	"repro/internal/perm"
)

// FormatBoxes renders a configuration the way the paper's figures draw it:
// the outside ball followed by the boxes, e.g. "5 [34][26][71]" for
// 5342671 with l = 3, n = 2.
func FormatBoxes(ly Layout, u perm.Perm) string {
	if len(u) != ly.K() {
		return u.String()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d ", u[0])
	for j := 1; j <= ly.L; j++ {
		b.WriteByte('[')
		for o := 1; o <= ly.N; o++ {
			v := u[ly.BoxStart(j)-1+o-1]
			if ly.K() <= 9 {
				fmt.Fprintf(&b, "%d", v)
			} else {
				if o > 1 {
					b.WriteByte(' ')
				}
				fmt.Fprintf(&b, "%d", v)
			}
		}
		b.WriteByte(']')
	}
	return b.String()
}

// Stats summarizes one solved game, exposing the quantities §2.2–§2.3
// reason about.
type Stats struct {
	// Moves is the total solution length.
	Moves int
	// NucleusMoves counts transpositions/insertions (ball moves).
	NucleusMoves int
	// SuperMoves counts swaps/rotations (box moves).
	SuperMoves int
	// Color0Events counts ball moves made while the outside ball was ball 1
	// — the "wasted" moves that the insertion rules of §2.3 nearly
	// eliminate (at most l parkings versus up to ~k/2 exchanges).
	Color0Events int
}

// Analyze replays a legal solution of (rules, u) and gathers statistics. It
// assumes moves were produced by Solve/SolveWithOffset (it does not
// re-verify legality; call Verify for that).
func Analyze(rules Rules, u perm.Perm, moves []gen.Generator) Stats {
	var st Stats
	cfg := u.Clone()
	for _, m := range moves {
		st.Moves++
		switch m.Class() {
		case gen.Nucleus:
			st.NucleusMoves++
			if cfg[0] == 1 {
				st.Color0Events++
			}
		case gen.Super:
			st.SuperMoves++
		}
		m.Apply(cfg)
	}
	return st
}

// String renders the statistics compactly.
func (s Stats) String() string {
	return fmt.Sprintf("moves=%d nucleus=%d super=%d color0=%d",
		s.Moves, s.NucleusMoves, s.SuperMoves, s.Color0Events)
}

// Color0Bound returns the maximum number of color-0 ball moves the rules can
// incur on any instance: at most l parkings under insertion play (§2.3,
// "this can only happen at most l times"), versus up to ⌊k/2⌋ exchanges
// under transposition play.
func Color0Bound(rules Rules) int {
	switch rules.Nucleus {
	case InsertionNucleus:
		return rules.Layout.L
	default:
		return rules.Layout.K() / 2
	}
}
