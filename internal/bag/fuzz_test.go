package bag

import (
	"testing"

	"repro/internal/perm"
)

// FuzzSolveRoute throws arbitrary (layout, style, configuration) triples at
// the ball-arrangement solver and checks the full routing contract: Solve
// succeeds on every legal game, Verify accepts the returned move sequence
// (every move permissible, final configuration the identity), and the length
// respects the paper's worst-case bound — the diameter guarantee the derived
// interconnection networks inherit.
func FuzzSolveRoute(f *testing.F) {
	f.Add(uint8(2), uint8(2), uint8(0), uint8(0), uint64(7))
	f.Add(uint8(1), uint8(4), uint8(1), uint8(0), uint64(0))
	f.Add(uint8(3), uint8(2), uint8(0), uint8(2), uint64(1<<30))
	f.Add(uint8(2), uint8(3), uint8(1), uint8(3), uint64(12345))
	f.Fuzz(func(t *testing.T, rawL, rawN, rawNucleus, rawSuper uint8, rawRank uint64) {
		// Keep k = n*l+1 <= 10 so each input solves in microseconds.
		l := 1 + int(rawL)%3
		n := 1 + int(rawN)%3
		rules := Rules{Layout: MustLayout(l, n)}
		if rawNucleus%2 == 1 {
			rules.Nucleus = InsertionNucleus
		} else {
			rules.Nucleus = TranspositionNucleus
		}
		if l == 1 {
			rules.Super = NoSuper
		} else {
			rules.Super = []SuperStyle{
				SwapSuper, RotSingleSuper, RotPairSuper, RotCompleteSuper,
			}[rawSuper%4]
		}
		if err := rules.Validate(); err != nil {
			t.Fatalf("constructed invalid rules %s: %v", rules, err)
		}

		k := rules.Layout.K()
		rank := int64(rawRank % uint64(perm.Factorial(k)))
		u := perm.Unrank(k, rank)

		moves, err := Solve(rules, u)
		if err != nil {
			t.Fatalf("Solve(%s, %v): %v", rules, u, err)
		}
		if err := Verify(rules, u, moves); err != nil {
			t.Fatalf("Verify(%s, %v, %v): %v", rules, u, MoveNames(moves), err)
		}
		if bound := WorstCaseBound(rules); len(moves) > bound {
			t.Fatalf("Solve(%s, %v) used %d moves, bound is %d", rules, u, len(moves), bound)
		}
	})
}
