package bag

import "testing"

func TestLayoutBasics(t *testing.T) {
	ly := MustLayout(3, 2)
	if ly.K() != 7 {
		t.Fatalf("K = %d", ly.K())
	}
	wantColors := map[int]int{1: 0, 2: 1, 3: 1, 4: 2, 5: 2, 6: 3, 7: 3}
	for s, c := range wantColors {
		if got := ly.ColorOf(s); got != c {
			t.Errorf("ColorOf(%d) = %d, want %d", s, got, c)
		}
	}
	wantOffsets := map[int]int{2: 1, 3: 2, 4: 1, 5: 2, 6: 1, 7: 2}
	for s, o := range wantOffsets {
		if got := ly.HomeOffset(s); got != o {
			t.Errorf("HomeOffset(%d) = %d, want %d", s, got, o)
		}
	}
}

func TestLayoutBoxRanges(t *testing.T) {
	ly := MustLayout(3, 2)
	cases := []struct{ slot, start, end int }{
		{1, 2, 3}, {2, 4, 5}, {3, 6, 7},
	}
	for _, c := range cases {
		if ly.BoxStart(c.slot) != c.start || ly.BoxEnd(c.slot) != c.end {
			t.Errorf("slot %d: [%d,%d], want [%d,%d]", c.slot, ly.BoxStart(c.slot), ly.BoxEnd(c.slot), c.start, c.end)
		}
	}
	if ly.SlotOfPosition(1) != 0 {
		t.Error("SlotOfPosition(1) != 0")
	}
	for pos := 2; pos <= 7; pos++ {
		slot := ly.SlotOfPosition(pos)
		if pos < ly.BoxStart(slot) || pos > ly.BoxEnd(slot) {
			t.Errorf("SlotOfPosition(%d) = %d inconsistent", pos, slot)
		}
	}
}

func TestLayoutValidation(t *testing.T) {
	if _, err := NewLayout(0, 2); err == nil {
		t.Error("l=0 accepted")
	}
	if _, err := NewLayout(2, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewLayout(1, 1); err != nil {
		t.Errorf("minimal layout rejected: %v", err)
	}
}

func TestLayoutHomeConsistency(t *testing.T) {
	// Ball s in the goal configuration sits at position s, which must equal
	// BoxStart(ColorOf(s)) + HomeOffset(s) - 1.
	for _, ly := range []Layout{MustLayout(1, 4), MustLayout(2, 3), MustLayout(4, 2), MustLayout(3, 3)} {
		for s := 2; s <= ly.K(); s++ {
			c := ly.ColorOf(s)
			if got := ly.BoxStart(c) + ly.HomeOffset(s) - 1; got != s {
				t.Errorf("%v: ball %d home position = %d", ly, s, got)
			}
		}
	}
}

func TestRulesValidation(t *testing.T) {
	if err := (Rules{Layout: MustLayout(1, 3), Nucleus: InsertionNucleus, Super: NoSuper}).Validate(); err != nil {
		t.Errorf("IS rules rejected: %v", err)
	}
	if err := (Rules{Layout: MustLayout(1, 3), Super: SwapSuper}).Validate(); err == nil {
		t.Error("l=1 with swaps accepted")
	}
	if err := (Rules{Layout: MustLayout(3, 2), Super: NoSuper}).Validate(); err == nil {
		t.Error("l=3 with no super moves accepted")
	}
}

func TestRulesGenerators(t *testing.T) {
	// MS(3,2): 2 transpositions + 2 swaps.
	ms := Rules{Layout: MustLayout(3, 2), Nucleus: TranspositionNucleus, Super: SwapSuper}
	if got := len(ms.Generators()); got != 4 {
		t.Errorf("MS(3,2) generator count = %d, want 4", got)
	}
	// complete-RR(3,2): 2 insertions + 2 rotations.
	crr := Rules{Layout: MustLayout(3, 2), Nucleus: InsertionNucleus, Super: RotCompleteSuper}
	if got := len(crr.Generators()); got != 4 {
		t.Errorf("complete-RR(3,2) generator count = %d, want 4", got)
	}
	// RR(3,2): 2 insertions + 1 rotation.
	rr := Rules{Layout: MustLayout(3, 2), Nucleus: InsertionNucleus, Super: RotSingleSuper}
	if got := len(rr.Generators()); got != 3 {
		t.Errorf("RR(3,2) generator count = %d, want 3", got)
	}
	// RS(2,2): rotation pair collapses to a single generator for l=2.
	rs := Rules{Layout: MustLayout(2, 2), Nucleus: TranspositionNucleus, Super: RotPairSuper}
	if got := len(rs.Generators()); got != 3 {
		t.Errorf("RS(2,2) generator count = %d, want 3 (pair collapses)", got)
	}
	// RS(3,2) keeps both directions.
	rs3 := Rules{Layout: MustLayout(3, 2), Nucleus: TranspositionNucleus, Super: RotPairSuper}
	if got := len(rs3.Generators()); got != 4 {
		t.Errorf("RS(3,2) generator count = %d, want 4", got)
	}
}

func TestStyleStrings(t *testing.T) {
	for _, s := range []SuperStyle{SwapSuper, RotSingleSuper, RotPairSuper, RotCompleteSuper, NoSuper} {
		if s.String() == "" {
			t.Errorf("SuperStyle %d empty name", s)
		}
	}
	for _, s := range []NucleusStyle{TranspositionNucleus, InsertionNucleus} {
		if s.String() == "" {
			t.Errorf("NucleusStyle %d empty name", s)
		}
	}
}
