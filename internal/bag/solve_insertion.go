package bag

import "repro/internal/gen"

// solveInsertion runs the insertion-based algorithm of §2.3: the outside
// ball is inserted at a chosen position of the leftmost box (ejecting the
// box's previous leftmost ball), which avoids most of the color-0 dead steps
// that transposition-based play suffers.
//
// Invariant: for the box of color c at slot j, the c_i rightmost balls that
// have color c and ascend form the clean suffix; inserting the next color-c
// ball at its sorted position grows the suffix monotonically. The color-0
// ball, when it surfaces, is parked at the (c_i+1)-th rightmost position of
// a dirty box and pops back out exactly when that box becomes clean.
func (s *state) solveInsertion() {
	ly := s.rules.Layout
	n := ly.N
	for {
		x := s.cfg[0]
		if x == 1 { // outside ball has color 0
			if s.iFirstDirtySlot() == 0 {
				break // every box holds its full color class in order
			}
			if !s.iDirtyBox(1) {
				j := s.nearestDirtySlot(s.iDirtyBox)
				switch s.rules.Super {
				case SwapSuper:
					s.applySwap(j)
				default:
					s.rotateForward((ly.L - j + 1) % ly.L)
				}
			}
			// Park ball 1 immediately left of the clean suffix.
			ci := s.iCleanCount(1)
			s.record(gen.NewInsertion(n + 1 - ci))
			continue
		}
		// Outside ball has color c != 0: bring its box to the front and
		// insert at the sorted position within the clean suffix.
		c := ly.ColorOf(x)
		if s.boxColor[0] != c {
			s.bringColorToFront(c)
		}
		ci := s.iCleanCount(1)
		greater := 0
		for o := n; o > n-ci; o-- {
			if s.ballAt(1, o) > x {
				greater++
			} else {
				break
			}
		}
		s.record(gen.NewInsertion(n + 1 - greater))
	}
	s.finishBoxes()
}
