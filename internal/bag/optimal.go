package bag

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/perm"
)

// SolveOptimal finds a provably shortest solution of the game (rules, u)
// using iterative-deepening A* over the implicit state graph. Unlike the
// BFS oracle in internal/core it needs O(depth) memory, so it works at any
// k — the cost is exponential time in the solution length, so it is
// practical for instances within a few moves of the diameter at k ≤ 9 and
// for short-distance queries at any size.
//
// The heuristic is admissible: every nucleus move changes the contents of
// at most 2 positions outside...; concretely we use
//
//	h(U) = max(dirtyBoxes-ish lower bound, ceil(misplaced / maxFix))
//
// where `misplaced` counts positions holding a wrong symbol and maxFix is
// the largest number of positions any single permissible move can correct.
func SolveOptimal(rules Rules, u perm.Perm, maxDepth int) ([]gen.Generator, error) {
	if err := rules.Validate(); err != nil {
		return nil, err
	}
	if len(u) != rules.Layout.K() {
		return nil, fmt.Errorf("bag: SolveOptimal: configuration has %d balls, layout wants %d", len(u), rules.Layout.K())
	}
	if err := u.Validate(); err != nil {
		return nil, err
	}
	if maxDepth <= 0 {
		maxDepth = WorstCaseBound(rules)
	}
	gens := rules.Generators()
	k := rules.Layout.K()
	maxFix := 1
	for _, g := range gens {
		if moved := movedPositions(g, k); moved > maxFix {
			maxFix = moved
		}
	}
	h := func(p perm.Perm) int {
		mis := p.Displacement()
		return (mis + maxFix - 1) / maxFix
	}
	cfg := u.Clone()
	if cfg.IsIdentity() {
		return nil, nil
	}
	srch := &idaState{gens: gens, h: h}
	srch.invIdx = make([]int, len(gens))
	srch.invGen = make([]gen.Generator, len(gens))
	for i, g := range gens {
		srch.invGen[i] = g.Inverse(k)
		srch.invIdx[i] = -1
		ip := srch.invGen[i].AsPerm(k)
		for j, g2 := range gens {
			if g2.AsPerm(k).Equal(ip) {
				srch.invIdx[i] = j
				break
			}
		}
	}
	for bound := h(cfg); bound <= maxDepth; bound++ {
		if srch.search(cfg, 0, bound, -1) {
			out := make([]gen.Generator, len(srch.path))
			copy(out, srch.path)
			return out, nil
		}
	}
	return nil, fmt.Errorf("bag: SolveOptimal: no solution within depth %d", maxDepth)
}

// idaState carries the iterative-deepening search context.
type idaState struct {
	gens   []gen.Generator
	invGen []gen.Generator
	invIdx []int
	h      func(perm.Perm) int
	path   []gen.Generator
}

// search explores cfg at the given depth under an f-bound; prevIdx is the
// index of the move that produced cfg (to prune immediate undo), or -1.
func (s *idaState) search(cfg perm.Perm, depth, bound, prevIdx int) bool {
	if depth+s.h(cfg) > bound {
		return false
	}
	if cfg.IsIdentity() {
		s.path = s.path[:depth]
		return true
	}
	if depth == bound {
		return false
	}
	for gi, g := range s.gens {
		if prevIdx >= 0 && s.invIdx[prevIdx] == gi {
			continue
		}
		g.Apply(cfg)
		if len(s.path) <= depth {
			s.path = append(s.path, g)
		} else {
			s.path[depth] = g
		}
		if s.search(cfg, depth+1, bound, gi) {
			return true
		}
		s.invGen[gi].Apply(cfg)
	}
	return false
}

// movedPositions counts the positions a generator displaces.
func movedPositions(g gen.Generator, k int) int {
	gp := g.AsPerm(k)
	moved := 0
	for i, v := range gp {
		if v != i+1 {
			moved++
		}
	}
	return moved
}

// Distance returns the exact game distance from u to the identity (the
// length of an optimal solution), via SolveOptimal.
func Distance(rules Rules, u perm.Perm, maxDepth int) (int, error) {
	moves, err := SolveOptimal(rules, u, maxDepth)
	if err != nil {
		return 0, err
	}
	return len(moves), nil
}
