package bag

import (
	"fmt"

	"repro/internal/gen"
)

// SuperStyle selects how boxes may be moved — the "second type" of
// permissible actions (§2.2). Each style corresponds to a different family
// of super generators and therefore to a different super Cayley graph class.
type SuperStyle int

const (
	// SwapSuper moves the leftmost box by interchanging it with an arbitrary
	// box (swap generators S_2..S_l); used by MS, MR, and MIS networks.
	SwapSuper SuperStyle = iota
	// RotSingleSuper rotates the boxes one position per step using only R
	// (= R^1); used by RR networks.
	RotSingleSuper
	// RotPairSuper rotates one position per step in either direction using
	// R and R^{-1}; used by RS and RIS networks.
	RotPairSuper
	// RotCompleteSuper rotates by any number of positions in one step using
	// the complete set R^1..R^{l-1}; used by complete-RS, complete-RR, and
	// complete-RIS networks.
	RotCompleteSuper
	// NoSuper forbids box moves entirely; only valid when l = 1 (star, IS,
	// and rotator nuclei).
	NoSuper
)

func (s SuperStyle) String() string {
	switch s {
	case SwapSuper:
		return "swap"
	case RotSingleSuper:
		return "rot-single"
	case RotPairSuper:
		return "rot-pair"
	case RotCompleteSuper:
		return "rot-complete"
	case NoSuper:
		return "none"
	default:
		return fmt.Sprintf("SuperStyle(%d)", int(s))
	}
}

// NucleusStyle selects how balls move between the outside slot and the
// leftmost box — the "first type" of permissible actions.
type NucleusStyle int

const (
	// TranspositionNucleus exchanges the outside ball with a ball of the
	// leftmost box (generators T_2..T_{n+1}); used by star, MS, RS,
	// complete-RS.
	TranspositionNucleus NucleusStyle = iota
	// InsertionNucleus inserts the outside ball at a chosen position of the
	// leftmost box, ejecting the box's leftmost ball (generators
	// I_2..I_{n+1}, §2.3); used by MR, RR, complete-RR, IS, MIS, RIS,
	// complete-RIS. (Selection generators, when present, make the graph
	// undirected but are not needed by the solver's upper-bound path.)
	InsertionNucleus
)

func (s NucleusStyle) String() string {
	switch s {
	case TranspositionNucleus:
		return "transposition"
	case InsertionNucleus:
		return "insertion"
	default:
		return fmt.Sprintf("NucleusStyle(%d)", int(s))
	}
}

// Rules fixes a ball-arrangement game variant: the box layout plus the
// permissible nucleus and super moves.
type Rules struct {
	Layout  Layout
	Nucleus NucleusStyle
	Super   SuperStyle
}

// Validate reports whether the rules are self-consistent.
func (r Rules) Validate() error {
	if r.Layout.L < 1 || r.Layout.N < 1 {
		return fmt.Errorf("bag: invalid layout %+v", r.Layout)
	}
	if r.Layout.L == 1 && r.Super != NoSuper {
		return fmt.Errorf("bag: l = 1 requires NoSuper, got %v", r.Super)
	}
	if r.Layout.L > 1 && r.Super == NoSuper {
		return fmt.Errorf("bag: l = %d > 1 requires a super style", r.Layout.L)
	}
	return nil
}

// Generators returns the permissible moves of the game as generators, i.e.
// the generator set of the derived super Cayley graph, without the inverse
// (selection / reverse-rotation) closure that some undirected variants add.
func (r Rules) Generators() []gen.Generator {
	ly := r.Layout
	var gs []gen.Generator
	switch r.Nucleus {
	case TranspositionNucleus:
		for i := 2; i <= ly.N+1; i++ {
			gs = append(gs, gen.NewTransposition(i))
		}
	case InsertionNucleus:
		for i := 2; i <= ly.N+1; i++ {
			gs = append(gs, gen.NewInsertion(i))
		}
	}
	switch r.Super {
	case SwapSuper:
		for i := 2; i <= ly.L; i++ {
			gs = append(gs, gen.NewSwap(i, ly.N))
		}
	case RotSingleSuper:
		gs = append(gs, gen.NewRotation(1, ly.N))
	case RotPairSuper:
		gs = append(gs, gen.NewRotation(1, ly.N))
		if ly.L > 2 {
			// For l = 2, R = R^{-1}: the pair collapses to a single generator.
			gs = append(gs, gen.NewRotation(ly.L-1, ly.N))
		}
	case RotCompleteSuper:
		for i := 1; i <= ly.L-1; i++ {
			gs = append(gs, gen.NewRotation(i, ly.N))
		}
	case NoSuper:
	}
	return gs
}

func (r Rules) String() string {
	return fmt.Sprintf("Rules(%s, nucleus=%s, super=%s)", r.Layout, r.Nucleus, r.Super)
}
