package bag

import (
	"strings"
	"testing"

	"repro/internal/perm"
)

func TestFormatBoxes(t *testing.T) {
	ly := MustLayout(3, 2)
	u := perm.MustNew([]int{5, 3, 4, 2, 6, 7, 1})
	got := FormatBoxes(ly, u)
	if got != "5 [34][26][71]" {
		t.Fatalf("FormatBoxes = %q", got)
	}
	// Wide symbols (k >= 10) get spaces.
	wide := MustLayout(3, 4)
	id := perm.Identity(13)
	s := FormatBoxes(wide, id)
	if !strings.Contains(s, "[2 3 4 5]") {
		t.Fatalf("wide format = %q", s)
	}
	// Size mismatch falls back to the raw permutation.
	if FormatBoxes(ly, perm.Identity(5)) != perm.Identity(5).String() {
		t.Error("mismatched layout should fall back")
	}
}

func TestAnalyzeCounts(t *testing.T) {
	ly := MustLayout(3, 2)
	u := perm.MustNew([]int{5, 3, 4, 2, 6, 7, 1})
	rules := Rules{Layout: ly, Nucleus: TranspositionNucleus, Super: RotCompleteSuper}
	moves, err := Solve(rules, u)
	if err != nil {
		t.Fatal(err)
	}
	st := Analyze(rules, u, moves)
	if st.Moves != len(moves) {
		t.Fatalf("moves %d vs %d", st.Moves, len(moves))
	}
	if st.NucleusMoves+st.SuperMoves != st.Moves {
		t.Fatalf("split %d+%d != %d", st.NucleusMoves, st.SuperMoves, st.Moves)
	}
	if st.String() == "" {
		t.Error("empty String")
	}
}

// TestColor0EventBounds verifies the central §2.3 accounting: insertion
// play parks ball 1 at most l times, while transposition play can waste up
// to ~k/2 exchanges — exhaustively over all 5040 states at (3,2).
func TestColor0EventBounds(t *testing.T) {
	ly := MustLayout(3, 2)
	total := perm.Factorial(7)
	styles := []Rules{
		{Layout: ly, Nucleus: TranspositionNucleus, Super: SwapSuper},
		{Layout: ly, Nucleus: InsertionNucleus, Super: SwapSuper},
		{Layout: ly, Nucleus: InsertionNucleus, Super: RotCompleteSuper},
	}
	worst := map[NucleusStyle]int{}
	for _, rules := range styles {
		bound := Color0Bound(rules)
		for r := int64(0); r < total; r += 3 {
			u := perm.Unrank(7, r)
			moves, err := Solve(rules, u)
			if err != nil {
				t.Fatal(err)
			}
			st := Analyze(rules, u, moves)
			if st.Color0Events > bound {
				t.Fatalf("%s: %v needs %d color-0 moves, bound %d",
					rules, u, st.Color0Events, bound)
			}
			if st.Color0Events > worst[rules.Nucleus] {
				worst[rules.Nucleus] = st.Color0Events
			}
		}
	}
	t.Logf("worst color-0 events: transposition=%d (bound %d), insertion=%d (bound %d)",
		worst[TranspositionNucleus], 7/2, worst[InsertionNucleus], 3)
	// The separation must be visible: transposition play's worst case
	// exceeds insertion play's.
	if worst[TranspositionNucleus] <= worst[InsertionNucleus] {
		t.Errorf("no color-0 separation: transposition %d vs insertion %d",
			worst[TranspositionNucleus], worst[InsertionNucleus])
	}
}

func TestColor0Bound(t *testing.T) {
	ly := MustLayout(4, 3)
	if Color0Bound(Rules{Layout: ly, Nucleus: InsertionNucleus, Super: SwapSuper}) != 4 {
		t.Error("insertion bound should be l")
	}
	if Color0Bound(Rules{Layout: ly, Nucleus: TranspositionNucleus, Super: SwapSuper}) != 6 {
		t.Error("transposition bound should be k/2")
	}
}
