package bag

import (
	"testing"

	"repro/internal/perm"
)

func TestSolveOptimalBasics(t *testing.T) {
	rules := Rules{Layout: MustLayout(2, 2), Nucleus: TranspositionNucleus, Super: SwapSuper}
	// Identity needs no moves.
	moves, err := SolveOptimal(rules, perm.Identity(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 0 {
		t.Fatalf("identity solved with %d moves", len(moves))
	}
	// A single-generator state is solved in one move.
	u := perm.Identity(5)
	u.Swap(1, 2) // T2 applied
	moves, err = SolveOptimal(rules, u, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 1 {
		t.Fatalf("one-away state solved with %d moves: %v", len(moves), MoveNames(moves))
	}
	if err := Verify(rules, u, moves); err != nil {
		t.Fatal(err)
	}
}

// TestSolveOptimalNeverLongerThanHeuristic: the optimal solver's length is a
// lower bound on the heuristic solver's, and both are legal solutions, over
// all 120 states of MS(2,2)-style rules.
func TestSolveOptimalNeverLongerThanHeuristic(t *testing.T) {
	for _, rules := range []Rules{
		{Layout: MustLayout(2, 2), Nucleus: TranspositionNucleus, Super: SwapSuper},
		{Layout: MustLayout(2, 2), Nucleus: InsertionNucleus, Super: RotCompleteSuper},
	} {
		total := perm.Factorial(5)
		for r := int64(0); r < total; r += 3 {
			u := perm.Unrank(5, r)
			opt, err := SolveOptimal(rules, u, 0)
			if err != nil {
				t.Fatalf("%s %v: %v", rules, u, err)
			}
			if err := Verify(rules, u, opt); err != nil {
				t.Fatalf("%s: optimal solution invalid: %v", rules, err)
			}
			heur, err := Solve(rules, u)
			if err != nil {
				t.Fatal(err)
			}
			if len(opt) > len(heur) {
				t.Fatalf("%s %v: optimal %d > heuristic %d", rules, u, len(opt), len(heur))
			}
		}
	}
}

func TestDistance(t *testing.T) {
	rules := Rules{Layout: MustLayout(2, 2), Nucleus: TranspositionNucleus, Super: SwapSuper}
	u := perm.MustNew([]int{3, 2, 1, 4, 5})
	d, err := Distance(rules, u, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d < 1 || d > 12 {
		t.Fatalf("distance %d out of range", d)
	}
}

func TestSolveOptimalDepthLimit(t *testing.T) {
	rules := Rules{Layout: MustLayout(2, 2), Nucleus: TranspositionNucleus, Super: SwapSuper}
	// Find a state at distance > 2 and confirm maxDepth = 2 fails.
	u := perm.MustNew([]int{5, 4, 3, 2, 1})
	if _, err := SolveOptimal(rules, u, 2); err == nil {
		t.Error("depth-2 search should fail for a far state")
	}
	if _, err := SolveOptimal(rules, perm.Identity(6), 0); err == nil {
		t.Error("size mismatch accepted")
	}
}

// TestSolveOptimalLargeKShortDistance: IDA* works at sizes far beyond BFS
// when the distance is small (k = 13).
func TestSolveOptimalLargeKShortDistance(t *testing.T) {
	rules := Rules{Layout: MustLayout(4, 3), Nucleus: TranspositionNucleus, Super: SwapSuper}
	u := perm.Identity(13)
	// Scramble with 4 random generator applications.
	gens := rules.Generators()
	rng := perm.NewRNG(9)
	for i := 0; i < 4; i++ {
		gens[rng.Intn(len(gens))].Apply(u)
	}
	moves, err := SolveOptimal(rules, u, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) > 4 {
		t.Fatalf("scrambled by 4 moves but optimal claims %d", len(moves))
	}
	if err := Verify(rules, u, moves); err != nil {
		t.Fatal(err)
	}
}
