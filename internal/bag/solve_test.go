package bag

import (
	"testing"
	"testing/quick"

	"repro/internal/perm"
)

// allRules enumerates every (nucleus, super) style combination valid for a
// multi-box layout.
func allRules(ly Layout) []Rules {
	var rs []Rules
	for _, nu := range []NucleusStyle{TranspositionNucleus, InsertionNucleus} {
		if ly.L == 1 {
			rs = append(rs, Rules{Layout: ly, Nucleus: nu, Super: NoSuper})
			continue
		}
		for _, su := range []SuperStyle{SwapSuper, RotSingleSuper, RotPairSuper, RotCompleteSuper} {
			rs = append(rs, Rules{Layout: ly, Nucleus: nu, Super: su})
		}
	}
	return rs
}

// TestSolveExhaustiveSmall solves every one of the k! configurations for
// several small layouts under every rule combination, verifying move
// legality, the final configuration, and the worst-case bound.
func TestSolveExhaustiveSmall(t *testing.T) {
	layouts := []Layout{
		MustLayout(2, 2), // k = 5, 120 states
		MustLayout(4, 1), // k = 5, boxes of one ball
		MustLayout(1, 4), // k = 5, IS/rotator style single box
		MustLayout(2, 3), // k = 7, 5040 states
		MustLayout(3, 2), // k = 7
	}
	if !testing.Short() {
		layouts = append(layouts,
			MustLayout(7, 1), // k = 8, 40320 states, single-ball boxes
			MustLayout(1, 7), // k = 8, one large box (IS/rotator regime)
		)
	}
	for _, ly := range layouts {
		k := ly.K()
		total := perm.Factorial(k)
		for _, rules := range allRules(ly) {
			bound := WorstCaseBound(rules)
			maxLen := 0
			for r := int64(0); r < total; r++ {
				u := perm.Unrank(k, r)
				moves, err := Solve(rules, u)
				if err != nil {
					t.Fatalf("%s: Solve(%v): %v", rules, u, err)
				}
				if err := Verify(rules, u, moves); err != nil {
					t.Fatalf("%s: Verify(%v): %v", rules, u, err)
				}
				if len(moves) > bound {
					t.Fatalf("%s: |moves| = %d exceeds bound %d for %v", rules, len(moves), bound, u)
				}
				if len(moves) > maxLen {
					maxLen = len(moves)
				}
			}
			t.Logf("%s: worst solved length %d (bound %d)", rules, maxLen, bound)
		}
	}
}

func TestSolveIdentityIsEmpty(t *testing.T) {
	for _, ly := range []Layout{MustLayout(2, 2), MustLayout(3, 2), MustLayout(1, 5)} {
		for _, rules := range allRules(ly) {
			moves, err := Solve(rules, perm.Identity(ly.K()))
			if err != nil {
				t.Fatalf("%s: %v", rules, err)
			}
			if len(moves) != 0 {
				t.Errorf("%s: identity solved with %d moves %v", rules, len(moves), MoveNames(moves))
			}
		}
	}
}

func TestSolveRejectsBadInput(t *testing.T) {
	rules := Rules{Layout: MustLayout(2, 2), Nucleus: TranspositionNucleus, Super: SwapSuper}
	if _, err := Solve(rules, perm.Identity(6)); err == nil {
		t.Error("wrong-size configuration accepted")
	}
	if _, err := SolveWithOffset(rules, perm.Identity(5), 1); err == nil {
		t.Error("nonzero offset accepted for swap style")
	}
	rot := Rules{Layout: MustLayout(3, 2), Nucleus: TranspositionNucleus, Super: RotCompleteSuper}
	if _, err := SolveWithOffset(rot, perm.Identity(7), 3); err == nil {
		t.Error("offset >= l accepted")
	}
	if _, err := Solve(Rules{Layout: MustLayout(3, 2), Nucleus: TranspositionNucleus, Super: NoSuper}, perm.Identity(7)); err == nil {
		t.Error("invalid rules accepted")
	}
}

// TestFigure2Configuration solves the paper's Figure 2 instance: source
// 5342671, destination 1234567, l = 3 boxes of n = 2 balls, balls moved by
// insertions and boxes by rotations.
func TestFigure2Configuration(t *testing.T) {
	u := perm.MustNew([]int{5, 3, 4, 2, 6, 7, 1})
	rules := Rules{Layout: MustLayout(3, 2), Nucleus: InsertionNucleus, Super: RotCompleteSuper}
	// Figure 2 uses the same color assignment as Figure 1 (colors 2,3,1 =
	// offset 1).
	fig2, err := SolveWithOffset(rules, u, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(rules, u, fig2); err != nil {
		t.Fatal(err)
	}
	t.Logf("Figure 2 (offset 1): %d moves: %v", len(fig2), MoveNames(fig2))
	// Figure 3 solves the same instance with a different color assignment
	// and "considerably reduces the number of steps": the best offset must
	// be no worse than offset 1.
	best, err := Solve(rules, u)
	if err != nil {
		t.Fatal(err)
	}
	if len(best) > len(fig2) {
		t.Errorf("best-offset solution (%d moves) longer than fixed-offset (%d)", len(best), len(fig2))
	}
	t.Logf("Figure 3 (best offset): %d moves: %v", len(best), MoveNames(best))
}

// TestColorAssignmentMatters reproduces the qualitative claim of Fig. 3:
// for some instance the best color offset is strictly better than the worst.
func TestColorAssignmentMatters(t *testing.T) {
	rules := Rules{Layout: MustLayout(3, 2), Nucleus: InsertionNucleus, Super: RotCompleteSuper}
	found := false
	total := perm.Factorial(7)
	for r := int64(0); r < total && !found; r += 97 {
		u := perm.Unrank(7, r)
		min, max := -1, -1
		for b := 0; b < 3; b++ {
			moves, err := SolveWithOffset(rules, u, b)
			if err != nil {
				t.Fatal(err)
			}
			if min == -1 || len(moves) < min {
				min = len(moves)
			}
			if len(moves) > max {
				max = len(moves)
			}
		}
		if max >= min+3 {
			found = true
		}
	}
	if !found {
		t.Error("no instance found where color assignment changes solution length by >= 3")
	}
}

func TestSolveStarExhaustive(t *testing.T) {
	for k := 2; k <= 7; k++ {
		bound := 3 * (k - 1) / 2
		maxLen := 0
		total := perm.Factorial(k)
		for r := int64(0); r < total; r++ {
			u := perm.Unrank(k, r)
			moves, err := SolveStar(u)
			if err != nil {
				t.Fatal(err)
			}
			if got := Replay(u, moves); !got.IsIdentity() {
				t.Fatalf("SolveStar(%v) ends at %v", u, got)
			}
			if len(moves) > bound {
				t.Fatalf("SolveStar(%v) took %d > ⌊3(k-1)/2⌋ = %d", u, len(moves), bound)
			}
			if len(moves) > maxLen {
				maxLen = len(moves)
			}
		}
		if k >= 3 && maxLen != bound {
			// The AHK bound is tight for every k >= 3.
			t.Errorf("k=%d: worst star solution %d, bound %d should be attained", k, maxLen, bound)
		}
	}
}

func TestSolveRotatorExhaustive(t *testing.T) {
	for k := 2; k <= 7; k++ {
		bound := k + 1
		total := perm.Factorial(k)
		for r := int64(0); r < total; r++ {
			u := perm.Unrank(k, r)
			moves, err := SolveRotator(u)
			if err != nil {
				t.Fatal(err)
			}
			if got := Replay(u, moves); !got.IsIdentity() {
				t.Fatalf("SolveRotator(%v) ends at %v", u, got)
			}
			if len(moves) > bound {
				t.Fatalf("SolveRotator(%v) took %d > %d", u, len(moves), bound)
			}
		}
	}
}

// TestQuickSolveLargeLayouts property-tests the solver on layouts too large
// to enumerate: random configurations must be solved legally within bound.
func TestQuickSolveLargeLayouts(t *testing.T) {
	layouts := []Layout{MustLayout(3, 3), MustLayout(2, 4), MustLayout(4, 3), MustLayout(3, 4)}
	f := func(seed uint64, pick uint8) bool {
		ly := layouts[int(pick)%len(layouts)]
		rng := perm.NewRNG(seed)
		u := perm.Random(ly.K(), rng)
		for _, rules := range allRules(ly) {
			moves, err := Solve(rules, u)
			if err != nil {
				t.Logf("%s: %v", rules, err)
				return false
			}
			if err := Verify(rules, u, moves); err != nil {
				t.Logf("%s: %v", rules, err)
				return false
			}
			if len(moves) > WorstCaseBound(rules) {
				t.Logf("%s: length %d > bound %d", rules, len(moves), WorstCaseBound(rules))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestInsertionBeatsTranspositionOnColor0 verifies the §2.3 claim: insertion
// play wastes far fewer steps on the color-0 ball. Averaged over random
// instances, the insertion solver should not be longer than the
// transposition solver.
func TestInsertionBeatsTranspositionOnColor0(t *testing.T) {
	ly := MustLayout(3, 3)
	rng := perm.NewRNG(17)
	var sumT, sumI int
	const trials = 200
	for i := 0; i < trials; i++ {
		u := perm.Random(ly.K(), rng)
		mt, err := Solve(Rules{Layout: ly, Nucleus: TranspositionNucleus, Super: SwapSuper}, u)
		if err != nil {
			t.Fatal(err)
		}
		mi, err := Solve(Rules{Layout: ly, Nucleus: InsertionNucleus, Super: SwapSuper}, u)
		if err != nil {
			t.Fatal(err)
		}
		sumT += len(mt)
		sumI += len(mi)
	}
	t.Logf("avg transposition-play length %.2f, insertion-play length %.2f",
		float64(sumT)/trials, float64(sumI)/trials)
	if sumI > sumT {
		t.Errorf("insertion play (%d total) longer than transposition play (%d total)", sumI, sumT)
	}
}

func TestReplayAndMoveNames(t *testing.T) {
	u := perm.MustNew([]int{5, 3, 4, 2, 6, 7, 1})
	rules := Rules{Layout: MustLayout(3, 2), Nucleus: TranspositionNucleus, Super: SwapSuper}
	moves, err := Solve(rules, u)
	if err != nil {
		t.Fatal(err)
	}
	if !Replay(u, moves).IsIdentity() {
		t.Error("Replay does not reach identity")
	}
	names := MoveNames(moves)
	if len(names) != len(moves) {
		t.Fatal("MoveNames length mismatch")
	}
	for _, nm := range names {
		if nm == "" {
			t.Error("empty move name")
		}
	}
}

func TestVerifyCatchesIllegalMove(t *testing.T) {
	u := perm.MustNew([]int{2, 1, 3, 4, 5})
	rules := Rules{Layout: MustLayout(2, 2), Nucleus: TranspositionNucleus, Super: SwapSuper}
	moves, err := Solve(rules, u)
	if err != nil {
		t.Fatal(err)
	}
	// Insertion moves are not permissible in the MS (transposition) game.
	illegal, err := Solve(Rules{Layout: MustLayout(2, 2), Nucleus: InsertionNucleus, Super: SwapSuper}, u)
	if err != nil {
		t.Fatal(err)
	}
	hasNonT2 := false
	for _, g := range illegal {
		if g.Name() != "T2" && g.Name() != "I2" && g.Name() != "S2" {
			hasNonT2 = true
		}
	}
	if hasNonT2 {
		if err := Verify(rules, u, illegal); err == nil {
			t.Error("Verify accepted insertion moves under transposition rules")
		}
	}
	// Truncated solutions must fail.
	if len(moves) > 0 {
		if err := Verify(rules, u, moves[:len(moves)-1]); err == nil {
			t.Error("Verify accepted truncated solution")
		}
	}
}

func BenchmarkSolveBallsToBoxes(b *testing.B) {
	rules := Rules{Layout: MustLayout(4, 3), Nucleus: TranspositionNucleus, Super: SwapSuper}
	rng := perm.NewRNG(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := perm.Random(13, rng)
		if _, err := Solve(rules, u); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveInsertionRotation(b *testing.B) {
	rules := Rules{Layout: MustLayout(4, 3), Nucleus: InsertionNucleus, Super: RotCompleteSuper}
	rng := perm.NewRNG(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := perm.Random(13, rng)
		if _, err := Solve(rules, u); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveStarK13(b *testing.B) {
	rng := perm.NewRNG(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := perm.Random(13, rng)
		if _, err := SolveStar(u); err != nil {
			b.Fatal(err)
		}
	}
}
