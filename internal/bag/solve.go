package bag

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/perm"
)

// SolveWithOffset solves the game defined by rules from configuration u to
// the identity configuration, assigning the box at initial slot j the color
// ((j-1+offset) mod l) + 1. The returned moves, applied to u in order,
// produce the identity permutation.
//
// The offset is the paper's color-assignment freedom (§2.2, Figures 1–3):
// rotation-style games require a cyclic color assignment, and the choice of
// offset can change the solution length considerably (Fig. 2 vs. Fig. 3).
// For swap-style and single-box games the offset must be 0.
func SolveWithOffset(rules Rules, u perm.Perm, offset int) ([]gen.Generator, error) {
	if err := rules.Validate(); err != nil {
		return nil, err
	}
	if len(u) != rules.Layout.K() {
		return nil, fmt.Errorf("bag: Solve: configuration has %d balls, layout wants %d", len(u), rules.Layout.K())
	}
	if err := u.Validate(); err != nil {
		return nil, err
	}
	rotational := rules.Super == RotSingleSuper || rules.Super == RotPairSuper || rules.Super == RotCompleteSuper
	if offset != 0 && !rotational {
		return nil, fmt.Errorf("bag: Solve: offset %d requires a rotation super style", offset)
	}
	if offset < 0 || (rotational && offset >= rules.Layout.L) {
		return nil, fmt.Errorf("bag: Solve: offset %d out of range 0..%d", offset, rules.Layout.L-1)
	}
	s := newState(rules, u, offset)
	switch rules.Nucleus {
	case TranspositionNucleus:
		s.solveTransposition()
	case InsertionNucleus:
		s.solveInsertion()
	default:
		return nil, fmt.Errorf("bag: Solve: unknown nucleus style %v", rules.Nucleus)
	}
	if !s.cfg.IsIdentity() {
		return nil, fmt.Errorf("bag: Solve: internal error: final configuration %v is not the identity", s.cfg)
	}
	return s.moves, nil
}

// Solve solves the game from configuration u, searching all cyclic color
// assignments for rotation-style games and returning the shortest solution
// found. Swap-style and single-box games have a single canonical assignment.
func Solve(rules Rules, u perm.Perm) ([]gen.Generator, error) {
	rotational := rules.Super == RotSingleSuper || rules.Super == RotPairSuper || rules.Super == RotCompleteSuper
	if !rotational {
		return SolveWithOffset(rules, u, 0)
	}
	var best []gen.Generator
	found := false
	for b := 0; b < rules.Layout.L; b++ {
		moves, err := SolveWithOffset(rules, u, b)
		if err != nil {
			return nil, err
		}
		if !found || len(moves) < len(best) {
			best, found = moves, true
		}
	}
	return best, nil
}

// SolveStar solves the ball-arrangement game behind the k-star graph
// (Akers, Harel & Krishnamurthy): at each step the leftmost ball may be
// exchanged with an arbitrary ball, i.e. generators T_2..T_k. The solution
// has at most ⌊3(k-1)/2⌋ moves.
func SolveStar(u perm.Perm) ([]gen.Generator, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	cfg := u.Clone()
	k := len(cfg)
	var moves []gen.Generator
	apply := func(i int) {
		g := gen.NewTransposition(i)
		g.Apply(cfg)
		moves = append(moves, g)
	}
	for !cfg.IsIdentity() {
		if x := cfg[0]; x != 1 {
			apply(x) // send the leftmost ball home, ejecting the occupant
		} else {
			for i := 2; i <= k; i++ {
				if cfg[i-1] != i {
					apply(i) // pull any misplaced ball to the front
					break
				}
			}
		}
	}
	return moves, nil
}

// SolveRotator solves the game behind the k-rotator graph (Corbett):
// generators I_2..I_k over all k symbols. It reuses the one-box insertion
// algorithm of §2.3.
func SolveRotator(u perm.Perm) ([]gen.Generator, error) {
	if len(u) < 2 {
		if err := u.Validate(); err != nil {
			return nil, err
		}
		return nil, nil
	}
	rules := Rules{Layout: MustLayout(1, len(u)-1), Nucleus: InsertionNucleus, Super: NoSuper}
	return Solve(rules, u)
}

// Replay applies moves to u and returns the resulting configuration.
func Replay(u perm.Perm, moves []gen.Generator) perm.Perm {
	cfg := u.Clone()
	for _, g := range moves {
		g.Apply(cfg)
	}
	return cfg
}

// Verify checks that moves is a legal solution of the game (rules, u): every
// move must be one of the rules' permissible actions and the final
// configuration must be the identity.
func Verify(rules Rules, u perm.Perm, moves []gen.Generator) error {
	k := rules.Layout.K()
	allowed := make(map[string]bool)
	for _, g := range rules.Generators() {
		allowed[g.AsPerm(k).String()] = true
	}
	cfg := u.Clone()
	for idx, g := range moves {
		if !allowed[g.AsPerm(k).String()] {
			return fmt.Errorf("bag: Verify: move %d (%s) is not a permissible action of %s", idx, g, rules)
		}
		g.Apply(cfg)
	}
	if !cfg.IsIdentity() {
		return fmt.Errorf("bag: Verify: final configuration %v is not the identity", cfg)
	}
	return nil
}

// MoveNames renders a move sequence in the paper's notation, e.g.
// ["T3", "S2", "I4"].
func MoveNames(moves []gen.Generator) []string {
	names := make([]string, len(moves))
	for i, g := range moves {
		names[i] = g.Name()
	}
	return names
}

// WorstCaseBound returns the upper bound our solver guarantees on the
// number of moves for the given rules, i.e. an upper bound on the diameter
// of the derived network. For the transposition nucleus with swaps this is
// the paper's Balls-to-Boxes bound ⌊2.5nl⌋ + l - 1 + ⌊1.5(l-1)⌋ (§2.1); the
// other styles follow the move-accounting in §2.2–2.3.
func WorstCaseBound(rules Rules) int {
	ly := rules.Layout
	n, l := ly.N, ly.L
	k := ly.K()
	switch rules.Nucleus {
	case TranspositionNucleus:
		// Phase-1 transposition events: <= nl home placements plus
		// <= nl/2 + 1 color-0 exchanges; each event is preceded by at most
		// one box move. The paper's tighter accounting for the swap style
		// (⌊2.5nl⌋ + l - 1 for Phase 1, §2.1) covers the exact algorithm we
		// run, so we keep it there; rotation styles charge the per-move
		// rotation cost of the style and a final alignment.
		events := 3*n*l/2 + 1
		switch rules.Super {
		case SwapSuper:
			return 5*n*l/2 + (l - 1) + 3*(l-1)/2
		case RotCompleteSuper:
			return 2*events + 1
		case RotPairSuper:
			return events*(1+l/2) + l/2
		case RotSingleSuper:
			return events*l + l - 1
		case NoSuper:
			return 3 * (k - 1) / 2 // a 1-box transposition game is a star game
		}
	case InsertionNucleus:
		inserts := n*l + l // ≤ nl suffix-growing inserts + ≤ l parkings
		switch rules.Super {
		case SwapSuper:
			return 2*inserts + 3*(l-1)/2
		case RotCompleteSuper:
			return 2*inserts + 1
		case RotPairSuper:
			return inserts*(1+l/2) + l/2
		case RotSingleSuper:
			return inserts*l + l - 1
		case NoSuper:
			return k + 1
		}
	}
	panic(fmt.Sprintf("bag: WorstCaseBound: unsupported rules %s", rules))
}
