package bag

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/perm"
)

// SolveWithOffset solves the game defined by rules from configuration u to
// the identity configuration, assigning the box at initial slot j the color
// ((j-1+offset) mod l) + 1. The returned moves, applied to u in order,
// produce the identity permutation.
//
// The offset is the paper's color-assignment freedom (§2.2, Figures 1–3):
// rotation-style games require a cyclic color assignment, and the choice of
// offset can change the solution length considerably (Fig. 2 vs. Fig. 3).
// For swap-style and single-box games the offset must be 0.
func SolveWithOffset(rules Rules, u perm.Perm, offset int) ([]gen.Generator, error) {
	var sc Scratch
	return sc.SolveWithOffset(rules, u, offset)
}

// Solve solves the game from configuration u, searching all cyclic color
// assignments for rotation-style games and returning the shortest solution
// found. Swap-style and single-box games have a single canonical assignment.
func Solve(rules Rules, u perm.Perm) ([]gen.Generator, error) {
	var sc Scratch
	return sc.Solve(rules, u)
}

// SolveStar solves the ball-arrangement game behind the k-star graph
// (Akers, Harel & Krishnamurthy): at each step the leftmost ball may be
// exchanged with an arbitrary ball, i.e. generators T_2..T_k. The solution
// has at most ⌊3(k-1)/2⌋ moves.
func SolveStar(u perm.Perm) ([]gen.Generator, error) {
	var sc Scratch
	return sc.SolveStar(u)
}

// SolveRotator solves the game behind the k-rotator graph (Corbett):
// generators I_2..I_k over all k symbols. It reuses the one-box insertion
// algorithm of §2.3.
func SolveRotator(u perm.Perm) ([]gen.Generator, error) {
	var sc Scratch
	return sc.SolveRotator(u)
}

// Replay applies moves to u and returns the resulting configuration.
func Replay(u perm.Perm, moves []gen.Generator) perm.Perm {
	cfg := u.Clone()
	for _, g := range moves {
		g.Apply(cfg)
	}
	return cfg
}

// Verify checks that moves is a legal solution of the game (rules, u): every
// move must be one of the rules' permissible actions and the final
// configuration must be the identity.
func Verify(rules Rules, u perm.Perm, moves []gen.Generator) error {
	k := rules.Layout.K()
	allowed := make(map[string]bool)
	for _, g := range rules.Generators() {
		allowed[g.AsPerm(k).String()] = true
	}
	cfg := u.Clone()
	for idx, g := range moves {
		if !allowed[g.AsPerm(k).String()] {
			return fmt.Errorf("bag: Verify: move %d (%s) is not a permissible action of %s", idx, g, rules)
		}
		g.Apply(cfg)
	}
	if !cfg.IsIdentity() {
		return fmt.Errorf("bag: Verify: final configuration %v is not the identity", cfg)
	}
	return nil
}

// MoveNames renders a move sequence in the paper's notation, e.g.
// ["T3", "S2", "I4"].
func MoveNames(moves []gen.Generator) []string {
	names := make([]string, len(moves))
	for i, g := range moves {
		names[i] = g.Name()
	}
	return names
}

// WorstCaseBound returns the upper bound our solver guarantees on the
// number of moves for the given rules, i.e. an upper bound on the diameter
// of the derived network. For the transposition nucleus with swaps this is
// the paper's Balls-to-Boxes bound ⌊2.5nl⌋ + l - 1 + ⌊1.5(l-1)⌋ (§2.1); the
// other styles follow the move-accounting in §2.2–2.3.
func WorstCaseBound(rules Rules) int {
	ly := rules.Layout
	n, l := ly.N, ly.L
	k := ly.K()
	switch rules.Nucleus {
	case TranspositionNucleus:
		// Phase-1 transposition events: <= nl home placements plus
		// <= nl/2 + 1 color-0 exchanges; each event is preceded by at most
		// one box move. The paper's tighter accounting for the swap style
		// (⌊2.5nl⌋ + l - 1 for Phase 1, §2.1) covers the exact algorithm we
		// run, so we keep it there; rotation styles charge the per-move
		// rotation cost of the style and a final alignment.
		events := 3*n*l/2 + 1
		switch rules.Super {
		case SwapSuper:
			return 5*n*l/2 + (l - 1) + 3*(l-1)/2
		case RotCompleteSuper:
			return 2*events + 1
		case RotPairSuper:
			return events*(1+l/2) + l/2
		case RotSingleSuper:
			return events*l + l - 1
		case NoSuper:
			return 3 * (k - 1) / 2 // a 1-box transposition game is a star game
		}
	case InsertionNucleus:
		inserts := n*l + l // ≤ nl suffix-growing inserts + ≤ l parkings
		switch rules.Super {
		case SwapSuper:
			return 2*inserts + 3*(l-1)/2
		case RotCompleteSuper:
			return 2*inserts + 1
		case RotPairSuper:
			return inserts*(1+l/2) + l/2
		case RotSingleSuper:
			return inserts*l + l - 1
		case NoSuper:
			return k + 1
		}
	}
	panic(fmt.Sprintf("bag: WorstCaseBound: unsupported rules %s", rules))
}
