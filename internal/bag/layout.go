// Package bag implements the ball-arrangement game (BAG) of Yeh &
// Varvarigos (ICPP 2001, §2) and the algorithms that solve it. Solving a
// game instance from configuration U to the identity arrangement is exactly
// routing from node U to node I in the corresponding super Cayley graph, so
// the solvers in this package double as the routing algorithms for every
// network in internal/topology.
//
// # Game model
//
// There are k = n·l + 1 balls numbered 1..k. Ball 1 has color 0 (the
// "outside ball" of the solved game); ball s > 1 has color ⌈(s-1)/n⌉. A
// configuration is a permutation U of 1..k: position 1 is the outside slot
// and positions (j-1)n+2 .. jn+1 form the box at slot j. The goal
// configuration is the identity permutation: ball 1 outside and box slot i
// holding the color-i balls in ascending order.
package bag

import "fmt"

// Layout fixes the box structure of a game: l boxes of n balls each, plus
// the outside ball, for k = n·l + 1 balls total.
type Layout struct {
	L int // number of boxes
	N int // balls per box (super-symbol length)
}

// NewLayout validates and returns a Layout.
func NewLayout(l, n int) (Layout, error) {
	if l < 1 || n < 1 {
		return Layout{}, fmt.Errorf("bag: NewLayout(%d,%d): need l >= 1 and n >= 1", l, n)
	}
	return Layout{L: l, N: n}, nil
}

// MustLayout is like NewLayout but panics on error.
func MustLayout(l, n int) Layout {
	ly, err := NewLayout(l, n)
	if err != nil {
		panic(err)
	}
	return ly
}

// K returns the total number of balls, n·l + 1.
func (ly Layout) K() int { return ly.N*ly.L + 1 }

// ColorOf returns the color of ball s: 0 for ball 1, otherwise the index of
// the box the ball belongs to in the goal configuration (1..l).
func (ly Layout) ColorOf(s int) int {
	if s == 1 {
		return 0
	}
	return (s-2)/ly.N + 1
}

// HomeOffset returns the 1-based offset within its home box at which ball s
// (s > 1) sits in the goal configuration.
func (ly Layout) HomeOffset(s int) int {
	if s <= 1 {
		panic("bag: HomeOffset: ball 1 lives outside the boxes")
	}
	return (s-2)%ly.N + 1
}

// BoxStart returns the 1-based permutation position of the first ball of the
// box at slot j (1..l).
func (ly Layout) BoxStart(j int) int {
	if j < 1 || j > ly.L {
		panic(fmt.Sprintf("bag: BoxStart(%d): slot out of range 1..%d", j, ly.L))
	}
	return (j-1)*ly.N + 2
}

// BoxEnd returns the 1-based permutation position of the last ball of the
// box at slot j.
func (ly Layout) BoxEnd(j int) int { return ly.BoxStart(j) + ly.N - 1 }

// SlotOfPosition returns the box slot (1..l) containing 1-based permutation
// position pos, or 0 for the outside slot (pos == 1).
func (ly Layout) SlotOfPosition(pos int) int {
	if pos == 1 {
		return 0
	}
	if pos < 1 || pos > ly.K() {
		panic(fmt.Sprintf("bag: SlotOfPosition(%d): out of range 1..%d", pos, ly.K()))
	}
	return (pos-2)/ly.N + 1
}

func (ly Layout) String() string {
	return fmt.Sprintf("Layout(l=%d, n=%d, k=%d)", ly.L, ly.N, ly.K())
}
