package bag

import "repro/internal/gen"

// solveTransposition runs the Balls-to-Boxes algorithm of §2.1 (and its
// rotation variants from §2.2): balls move by exchanging the outside ball
// with a ball of the leftmost box; boxes move by swaps or rotations.
//
// Phase 1 empties the outside slot and fills every box with its own color
// class at the correct offsets; Phase 2 (swap style) sorts the boxes, or
// (rotation styles) aligns the cyclic order with a final rotation.
func (s *state) solveTransposition() {
	ly := s.rules.Layout
	for {
		x := s.cfg[0]
		if x == 1 { // Case 1.1: the outside ball has color 0.
			dirty := s.tFirstDirtySlot()
			if dirty == 0 {
				break // all boxes clean: go to Phase 2
			}
			if !s.tDirtyBox(1) {
				// 1.1.1: leftmost box clean; bring a dirty box to the front.
				j := s.nearestDirtySlot(s.tDirtyBox)
				switch s.rules.Super {
				case SwapSuper:
					s.applySwap(j)
				default:
					s.rotateForward((ly.L - j + 1) % ly.L)
				}
			}
			// 1.1.2: exchange the outside ball with a dirty ball in the
			// leftmost box. The algorithm may pick any dirty ball; we prefer
			// one whose color matches the front box, because its subsequent
			// placement (1.2.2) then needs no box move.
			pick := 0
			for o := 1; o <= ly.N; o++ {
				if !s.tDirtyBall(1, o) {
					continue
				}
				if pick == 0 {
					pick = o
				}
				if ly.ColorOf(s.ballAt(1, o)) == s.boxColor[0] {
					pick = o
					break
				}
			}
			s.record(gen.NewTransposition(1 + pick))
			continue
		}
		// Case 1.2: outside ball has color c != 0.
		c := ly.ColorOf(x)
		if s.boxColor[0] != c {
			// 1.2.1: bring the box of color c to the front.
			s.bringColorToFront(c)
		}
		// 1.2.2: put the outside ball at its correct position in the
		// leftmost box, taking the displaced ball outside.
		s.record(gen.NewTransposition(1 + ly.HomeOffset(x)))
	}
	s.finishBoxes()
}

// finishBoxes restores box order after Phase 1: a star-algorithm sort on box
// colors for the swap style (§2.1 Phase 2), or a single alignment rotation
// for rotation styles (§2.2: "Phase 2 can be completed in at most one
// rotation step").
func (s *state) finishBoxes() {
	ly := s.rules.Layout
	switch s.rules.Super {
	case SwapSuper:
		for {
			if s.boxColorsSorted() {
				return
			}
			if s.boxColor[0] == 1 {
				// 2.2: exchange the leftmost box with any misplaced box.
				for j := 2; j <= ly.L; j++ {
					if s.boxColor[j-1] != j {
						s.applySwap(j)
						break
					}
				}
			} else {
				// 2.3: send the leftmost box to its home slot.
				s.applySwap(s.boxColor[0])
			}
		}
	case RotSingleSuper, RotPairSuper, RotCompleteSuper:
		j := s.slotOfColor(1)
		s.rotateForward((ly.L - j + 1) % ly.L)
	case NoSuper:
		// l = 1: nothing to order.
	}
}

func (s *state) boxColorsSorted() bool {
	for j, c := range s.boxColor {
		if c != j+1 {
			return false
		}
	}
	return true
}
