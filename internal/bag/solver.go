package bag

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/perm"
)

// state carries a game in progress: the current ball configuration, the
// color currently assigned to the box at each slot, and the moves performed
// so far. Box colors travel with boxes when boxes move — they are the
// algorithm's bookkeeping (the paper's "assign colors to the boxes so as to
// facilitate the use of algorithms", §2.2), not part of the network node.
type state struct {
	rules    Rules
	cfg      perm.Perm
	boxColor []int // boxColor[j-1] = color of the box currently at slot j
	moves    []gen.Generator
	rotated  []int // scratch for rotateForward's color-array rotation
}

func (s *state) record(g gen.Generator) {
	g.Apply(s.cfg)
	s.moves = append(s.moves, g)
}

// slotOfColor returns the slot currently holding the box of color c.
func (s *state) slotOfColor(c int) int {
	for j, col := range s.boxColor {
		if col == c {
			return j + 1
		}
	}
	panic(fmt.Sprintf("bag: slotOfColor: no box has color %d", c))
}

// applySwap performs S_j, exchanging the boxes (and their colors) at slots 1
// and j.
func (s *state) applySwap(j int) {
	s.record(gen.NewSwap(j, s.rules.Layout.N))
	s.boxColor[0], s.boxColor[j-1] = s.boxColor[j-1], s.boxColor[0]
}

// rotateForward performs t forward single-box rotations' worth of movement
// using whichever rotation generators the rules permit, updating box colors.
// t is taken modulo l.
func (s *state) rotateForward(t int) {
	l := s.rules.Layout.L
	n := s.rules.Layout.N
	t = ((t % l) + l) % l
	if t == 0 {
		return
	}
	switch s.rules.Super {
	case RotCompleteSuper:
		s.record(gen.NewRotation(t, n))
	case RotSingleSuper:
		for i := 0; i < t; i++ {
			s.record(gen.NewRotation(1, n))
		}
	case RotPairSuper:
		if t <= l-t || l == 2 {
			for i := 0; i < t; i++ {
				s.record(gen.NewRotation(1, n))
			}
		} else {
			for i := 0; i < l-t; i++ {
				s.record(gen.NewRotation(l-1, n))
			}
		}
	default:
		panic(fmt.Sprintf("bag: rotateForward: unsupported super style %v", s.rules.Super))
	}
	// A forward rotation by t moves the box at slot j to slot j+t (mod l):
	// rotate the color array right by t.
	if cap(s.rotated) < l {
		s.rotated = make([]int, l)
	}
	rotated := s.rotated[:l]
	for j := 0; j < l; j++ {
		rotated[(j+t)%l] = s.boxColor[j]
	}
	copy(s.boxColor, rotated)
}

// rotationCost returns the number of moves rotateForward(t) would emit.
func (s *state) rotationCost(t int) int {
	l := s.rules.Layout.L
	t = ((t % l) + l) % l
	if t == 0 {
		return 0
	}
	switch s.rules.Super {
	case RotCompleteSuper:
		return 1
	case RotSingleSuper:
		return t
	case RotPairSuper:
		if l == 2 {
			return t
		}
		if t <= l-t {
			return t
		}
		return l - t
	default:
		return 0
	}
}

// bringColorToFront moves the box of color c to slot 1 using the permitted
// super moves.
func (s *state) bringColorToFront(c int) {
	j := s.slotOfColor(c)
	if j == 1 {
		return
	}
	switch s.rules.Super {
	case SwapSuper:
		s.applySwap(j)
	case RotSingleSuper, RotPairSuper, RotCompleteSuper:
		l := s.rules.Layout.L
		s.rotateForward((l - j + 1) % l)
	case NoSuper:
		panic("bag: bringColorToFront: box moves are not permitted (l = 1)")
	}
}

// ballAt returns the ball at offset o (1..n) of the box at slot j.
func (s *state) ballAt(j, o int) int {
	return s.cfg[s.rules.Layout.BoxStart(j)-1+o-1]
}

// --- cleanliness under the transposition nucleus (Balls-to-Boxes, §2.1) ---

// tDirtyBall reports whether the ball at offset o of the box at slot j is
// dirty: wrong color for its box, or right color at the wrong offset.
func (s *state) tDirtyBall(j, o int) bool {
	ly := s.rules.Layout
	b := s.ballAt(j, o)
	c := s.boxColor[j-1]
	return ly.ColorOf(b) != c || ly.HomeOffset(b) != o
}

// tDirtyBox reports whether the box at slot j contains any dirty ball.
func (s *state) tDirtyBox(j int) bool {
	for o := 1; o <= s.rules.Layout.N; o++ {
		if s.tDirtyBall(j, o) {
			return true
		}
	}
	return false
}

// tFirstDirtySlot returns the lowest slot holding a dirty box, or 0 if every
// box is clean.
func (s *state) tFirstDirtySlot() int {
	for j := 1; j <= s.rules.Layout.L; j++ {
		if s.tDirtyBox(j) {
			return j
		}
	}
	return 0
}

// --- cleanliness under the insertion nucleus (§2.3) ---

// iCleanCount returns c_i for the box at slot j: the number of rightmost
// balls that have the box's color and are in ascending order.
func (s *state) iCleanCount(j int) int {
	ly := s.rules.Layout
	c := s.boxColor[j-1]
	count := 0
	prev := ly.K() + 1 // sentinel above any ball number
	for o := ly.N; o >= 1; o-- {
		b := s.ballAt(j, o)
		if ly.ColorOf(b) != c || b >= prev {
			break
		}
		count++
		prev = b
	}
	return count
}

func (s *state) iDirtyBox(j int) bool { return s.iCleanCount(j) < s.rules.Layout.N }

func (s *state) iFirstDirtySlot() int {
	for j := 1; j <= s.rules.Layout.L; j++ {
		if s.iDirtyBox(j) {
			return j
		}
	}
	return 0
}

// nearestDirtySlot returns the dirty slot that is cheapest to bring to the
// front under the current super style (ties broken by lower slot), or 0 if
// all boxes are clean. dirty is the style-appropriate dirtiness predicate.
func (s *state) nearestDirtySlot(dirty func(int) bool) int {
	l := s.rules.Layout.L
	best, bestCost := 0, int(^uint(0)>>1)
	for j := 1; j <= l; j++ {
		if !dirty(j) {
			continue
		}
		cost := 0
		switch s.rules.Super {
		case SwapSuper, NoSuper:
			if j != 1 {
				cost = 1
			}
		default:
			cost = s.rotationCost((l - j + 1) % l)
		}
		if cost < bestCost {
			best, bestCost = j, cost
		}
	}
	return best
}
