// Package gen defines the generator operators from which every super Cayley
// graph in the paper is built (Yeh & Varvarigos, ICPP 2001, §3.1 and §3.3):
//
//   - transposition generators T_i (Definition 3.1),
//   - swap super generators S_{i,n} (Definition 3.1),
//   - insertion generators I_i (Definition 3.2),
//   - selection generators I_i^{-1} (Definition 3.3), and
//   - rotation super generators R^i (Definition 3.4).
//
// Each generator is a fixed permutation of positions. Applying generator g
// to node label U yields the neighbor V = U ∘ g (right multiplication),
// which is exactly "taking move g" in the ball-arrangement game. Generators
// are classified as nucleus generators (they permute only the leftmost n+1
// symbols: T, I, I^{-1}) or super generators (they permute whole
// super-symbols: S, R). The distinction drives the MCMP intercluster
// analysis in §4.3.
package gen

import (
	"fmt"

	"repro/internal/perm"
)

// Class tells whether a generator moves individual balls within the leftmost
// box (nucleus) or moves whole boxes (super). See §3.2 of the paper.
type Class int

const (
	// Nucleus generators permute the leftmost n+1 symbols.
	Nucleus Class = iota
	// Super generators permute super-symbols without changing their
	// contents; the corresponding links are intercluster links.
	Super
)

func (c Class) String() string {
	switch c {
	case Nucleus:
		return "nucleus"
	case Super:
		return "super"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Kind identifies the operator family a generator belongs to.
type Kind int

const (
	Transposition  Kind = iota // T_i: swap u1 and u_i
	Swap                       // S_{i,n}: swap super-symbols 1 and i
	Insertion                  // I_i: rotate prefix u_{1:i} left
	Selection                  // I_i^{-1}: rotate prefix u_{1:i} right
	Rotation                   // R^i: rotate suffix u_{2:k} right by i·n
	PositionSwap               // P_{i,j}: swap u_i and u_j (baseline graphs)
	PrefixReversal             // F_i: reverse u_{1:i} (pancake baseline)
)

func (k Kind) String() string {
	switch k {
	case Transposition:
		return "transposition"
	case Swap:
		return "swap"
	case Insertion:
		return "insertion"
	case Selection:
		return "selection"
	case Rotation:
		return "rotation"
	case PositionSwap:
		return "position-swap"
	case PrefixReversal:
		return "prefix-reversal"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Generator is one permissible move of a ball-arrangement game, equivalently
// one link dimension of a super Cayley graph.
type Generator struct {
	kind Kind
	// i is the defining index: the dimension for T_i/I_i/I_i^{-1}, the level
	// for S_{i,n}, and the exponent for R^i.
	i int
	// n is the super-symbol length; meaningful for Swap and Rotation.
	n int
}

// NewTransposition returns T_i, the operator that interchanges symbol u_i
// with symbol u_1 (Definition 3.1). Valid for i in 2..k.
func NewTransposition(i int) Generator {
	if i < 2 {
		panic(fmt.Sprintf("gen: NewTransposition(%d): i must be >= 2", i))
	}
	return Generator{kind: Transposition, i: i}
}

// NewSwap returns S_{i,n}, the level-i swap generator that interchanges
// super-symbol i (symbols u_{(i-1)n+2 .. in+1}) with super-symbol 1
// (symbols u_{2..n+1}) (Definition 3.1). Valid for i in 2..l.
func NewSwap(i, n int) Generator {
	if i < 2 || n < 1 {
		panic(fmt.Sprintf("gen: NewSwap(%d,%d): need i >= 2, n >= 1", i, n))
	}
	return Generator{kind: Swap, i: i, n: n}
}

// NewInsertion returns I_i, the operator that cyclically shifts the leftmost
// i symbols left by one position (Definition 3.2): I_i(U) =
// u_{2:i} u_1 u_{i+1:k}. Valid for i in 2..k.
func NewInsertion(i int) Generator {
	if i < 2 {
		panic(fmt.Sprintf("gen: NewInsertion(%d): i must be >= 2", i))
	}
	return Generator{kind: Insertion, i: i}
}

// NewSelection returns I_i^{-1}, the operator that cyclically shifts the
// leftmost i symbols right by one position (Definition 3.3). Valid for i in
// 2..k.
func NewSelection(i int) Generator {
	if i < 2 {
		panic(fmt.Sprintf("gen: NewSelection(%d): i must be >= 2", i))
	}
	return Generator{kind: Selection, i: i}
}

// NewRotation returns R^i for super-symbol length n: the operator that
// cyclically shifts the rightmost k-1 symbols right by i·n positions
// (Definition 3.4). i may be any integer; it acts modulo l. i = l-1 equals
// R^{-1}.
func NewRotation(i, n int) Generator {
	if n < 1 {
		panic(fmt.Sprintf("gen: NewRotation(%d,%d): n must be >= 1", i, n))
	}
	return Generator{kind: Rotation, i: i, n: n}
}

// NewPositionSwap returns P_{i,j}, the operator that exchanges the symbols
// at positions i and j. It is not one of the paper's BAG operators; it
// exists to build the bubble-sort and transposition-network baselines that
// the paper cites as embedding targets. T_i equals P_{1,i}.
func NewPositionSwap(i, j int) Generator {
	if i < 1 || j < 1 || i == j {
		panic(fmt.Sprintf("gen: NewPositionSwap(%d,%d): need distinct positions >= 1", i, j))
	}
	if i > j {
		i, j = j, i
	}
	return Generator{kind: PositionSwap, i: i, n: j}
}

// NewPrefixReversal returns F_i, the operator that reverses the leftmost i
// symbols; the pancake-graph baseline is generated by F_2..F_k.
func NewPrefixReversal(i int) Generator {
	if i < 2 {
		panic(fmt.Sprintf("gen: NewPrefixReversal(%d): i must be >= 2", i))
	}
	return Generator{kind: PrefixReversal, i: i}
}

// Kind returns the operator family.
func (g Generator) Kind() Kind { return g.kind }

// Index returns the defining index i (dimension, level, or exponent).
func (g Generator) Index() int { return g.i }

// BlockLen returns the super-symbol length n for Swap and Rotation
// generators, and 0 otherwise.
func (g Generator) BlockLen() int {
	if g.kind == Swap || g.kind == Rotation {
		return g.n
	}
	return 0
}

// SecondIndex returns j for PositionSwap generators and 0 otherwise.
func (g Generator) SecondIndex() int {
	if g.kind == PositionSwap {
		return g.n
	}
	return 0
}

// Class reports whether g is a nucleus or super generator.
func (g Generator) Class() Class {
	if g.kind == Swap || g.kind == Rotation {
		return Super
	}
	return Nucleus
}

// Name renders the paper's notation: T3, S2, I4, I4', R2 (the prime marks a
// selection, i.e. an inverse insertion).
func (g Generator) Name() string {
	switch g.kind {
	case Transposition:
		return fmt.Sprintf("T%d", g.i)
	case Swap:
		return fmt.Sprintf("S%d", g.i)
	case Insertion:
		return fmt.Sprintf("I%d", g.i)
	case Selection:
		return fmt.Sprintf("I%d'", g.i)
	case Rotation:
		return fmt.Sprintf("R%d", g.i)
	case PositionSwap:
		return fmt.Sprintf("P(%d,%d)", g.i, g.n)
	case PrefixReversal:
		return fmt.Sprintf("F%d", g.i)
	default:
		return "?"
	}
}

// String implements fmt.Stringer.
func (g Generator) String() string { return g.Name() }

// MinK returns the smallest number of symbols a permutation must have for g
// to act on it.
func (g Generator) MinK() int {
	switch g.kind {
	case Transposition, Insertion, Selection, PrefixReversal:
		return g.i
	case Swap:
		return g.i*g.n + 1
	case Rotation:
		return g.n + 2 // at least two super-symbols to rotate meaningfully
	case PositionSwap:
		return g.n // j >= i by construction
	default:
		return 1
	}
}

// Apply performs g's move on p in place. It panics if p is too short.
func (g Generator) Apply(p perm.Perm) {
	k := len(p)
	if k < g.MinK() {
		panic(fmt.Sprintf("gen: %s.Apply: k=%d < MinK=%d", g.Name(), k, g.MinK()))
	}
	switch g.kind {
	case Transposition:
		p.Swap(1, g.i)
	case Swap:
		p.SwapBlocks(2, (g.i-1)*g.n+2, g.n)
	case Insertion:
		p.RotateLeftPrefix(g.i)
	case Selection:
		p.RotateRightPrefix(g.i)
	case Rotation:
		l := (k - 1) / g.n
		if l*g.n != k-1 {
			panic(fmt.Sprintf("gen: %s.Apply: k-1=%d not a multiple of n=%d", g.Name(), k-1, g.n))
		}
		shift := ((g.i % l) + l) % l * g.n
		p.RotateSuffixRight(shift)
	case PositionSwap:
		p.Swap(g.i, g.n)
	case PrefixReversal:
		for a, b := 0, g.i-1; a < b; a, b = a+1, b-1 {
			p[a], p[b] = p[b], p[a]
		}
	}
}

// ApplyTo returns a fresh permutation equal to p after g's move; p is left
// untouched.
func (g Generator) ApplyTo(p perm.Perm) perm.Perm {
	q := p.Clone()
	g.Apply(q)
	return q
}

// Inverse returns the generator whose move undoes g for permutations of k
// symbols. Transpositions and swaps are involutions; insertion and selection
// invert each other; R^i inverts to R^{l-i}.
func (g Generator) Inverse(k int) Generator {
	switch g.kind {
	case Transposition, Swap, PositionSwap, PrefixReversal:
		return g
	case Insertion:
		return Generator{kind: Selection, i: g.i}
	case Selection:
		return Generator{kind: Insertion, i: g.i}
	case Rotation:
		l := (k - 1) / g.n
		inv := ((l-g.i%l)%l + l) % l
		return Generator{kind: Rotation, i: inv, n: g.n}
	default:
		panic("gen: Inverse: unknown kind")
	}
}

// AsPerm materializes g as an explicit permutation of k positions, so that
// applying g to U equals U.Compose(g.AsPerm(k)).
func (g Generator) AsPerm(k int) perm.Perm {
	p := perm.Identity(k)
	g.Apply(p)
	return p
}

// SelfInverse reports whether applying g twice returns to the start for
// permutations of k symbols.
func (g Generator) SelfInverse(k int) bool {
	gp := g.AsPerm(k)
	return gp.Compose(gp).IsIdentity()
}
