package gen

import (
	"testing"

	"repro/internal/perm"
)

func TestPositionSwapAction(t *testing.T) {
	p := perm.MustNew([]int{1, 2, 3, 4, 5})
	NewPositionSwap(2, 4).Apply(p)
	if !p.Equal(perm.MustNew([]int{1, 4, 3, 2, 5})) {
		t.Fatalf("P(2,4) = %v", p)
	}
	NewPositionSwap(4, 2).Apply(p) // argument order normalizes
	if !p.IsIdentity() {
		t.Fatalf("P(4,2) did not undo: %v", p)
	}
	// T_i is P(1,i).
	a := NewTransposition(3).AsPerm(5)
	b := NewPositionSwap(1, 3).AsPerm(5)
	if !a.Equal(b) {
		t.Error("T3 != P(1,3)")
	}
	if NewPositionSwap(2, 4).Name() != "P(2,4)" {
		t.Error("name")
	}
	if !NewPositionSwap(2, 4).SelfInverse(5) {
		t.Error("position swap must be self-inverse")
	}
	if NewPositionSwap(2, 4).Class() != Nucleus {
		t.Error("class")
	}
}

func TestPositionSwapPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewPositionSwap(0, 2) },
		func() { NewPositionSwap(2, 2) },
		func() { NewPositionSwap(-1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid NewPositionSwap did not panic")
				}
			}()
			f()
		}()
	}
}

func TestPrefixReversalAction(t *testing.T) {
	p := perm.MustNew([]int{1, 2, 3, 4, 5})
	NewPrefixReversal(4).Apply(p)
	if !p.Equal(perm.MustNew([]int{4, 3, 2, 1, 5})) {
		t.Fatalf("F4 = %v", p)
	}
	NewPrefixReversal(4).Apply(p)
	if !p.IsIdentity() {
		t.Fatalf("F4 not involutive: %v", p)
	}
	if !NewPrefixReversal(3).SelfInverse(5) {
		t.Error("prefix reversal must be self-inverse")
	}
	if NewPrefixReversal(3).Name() != "F3" {
		t.Error("name")
	}
	// F2 = T2.
	if !NewPrefixReversal(2).AsPerm(4).Equal(NewTransposition(2).AsPerm(4)) {
		t.Error("F2 != T2")
	}
	defer func() {
		if recover() == nil {
			t.Error("F1 did not panic")
		}
	}()
	NewPrefixReversal(1)
}

func TestSecondIndex(t *testing.T) {
	if NewPositionSwap(2, 4).SecondIndex() != 4 {
		t.Error("SecondIndex")
	}
	if NewTransposition(3).SecondIndex() != 0 {
		t.Error("SecondIndex for non-swap should be 0")
	}
}

func TestBaselineKindStrings(t *testing.T) {
	if PositionSwap.String() != "position-swap" || PrefixReversal.String() != "prefix-reversal" {
		t.Error("kind strings")
	}
}
