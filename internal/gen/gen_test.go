package gen

import (
	"testing"
	"testing/quick"

	"repro/internal/perm"
)

func TestTranspositionAction(t *testing.T) {
	p := perm.MustNew([]int{1, 2, 3, 4, 5, 6, 7})
	NewTransposition(4).Apply(p)
	if !p.Equal(perm.MustNew([]int{4, 2, 3, 1, 5, 6, 7})) {
		t.Fatalf("T4 = %v", p)
	}
	NewTransposition(4).Apply(p)
	if !p.IsIdentity() {
		t.Fatalf("T4 not involutive: %v", p)
	}
}

func TestSwapAction(t *testing.T) {
	// k = 7, n = 2, l = 3: super-symbols at positions (2,3), (4,5), (6,7).
	p := perm.MustNew([]int{1, 2, 3, 4, 5, 6, 7})
	NewSwap(3, 2).Apply(p)
	if !p.Equal(perm.MustNew([]int{1, 6, 7, 4, 5, 2, 3})) {
		t.Fatalf("S3 = %v", p)
	}
	NewSwap(3, 2).Apply(p)
	if !p.IsIdentity() {
		t.Fatalf("S3 not involutive: %v", p)
	}
}

func TestInsertionSelectionAction(t *testing.T) {
	// Definition 3.2: I_i(U) = u_{2:i} u_1 u_{i+1:k}.
	p := perm.MustNew([]int{1, 2, 3, 4, 5, 6, 7})
	NewInsertion(4).Apply(p)
	if !p.Equal(perm.MustNew([]int{2, 3, 4, 1, 5, 6, 7})) {
		t.Fatalf("I4 = %v", p)
	}
	NewSelection(4).Apply(p)
	if !p.IsIdentity() {
		t.Fatalf("I4' did not undo I4: %v", p)
	}
}

func TestRotationAction(t *testing.T) {
	// Definition 3.4 with k = 7, n = 2, l = 3:
	// R^i(u_{1:k}) = u_1 u_{k-in+1:k} u_{2:k-in}.
	p := perm.MustNew([]int{1, 2, 3, 4, 5, 6, 7})
	NewRotation(1, 2).Apply(p)
	if !p.Equal(perm.MustNew([]int{1, 6, 7, 2, 3, 4, 5})) {
		t.Fatalf("R1 = %v", p)
	}
	// R^2 after R^1 is a full cycle of 3 super-symbols: back to identity.
	NewRotation(2, 2).Apply(p)
	if !p.IsIdentity() {
		t.Fatalf("R2∘R1 != id: %v", p)
	}
}

func TestRotationDecomposesIntoR1Powers(t *testing.T) {
	// R^i = R∘R∘...∘R (i times), paper §3.3.
	for _, n := range []int{1, 2, 3} {
		for l := 2; l <= 4; l++ {
			k := n*l + 1
			for i := 0; i < 2*l; i++ {
				direct := NewRotation(i, n).AsPerm(k)
				iter := perm.Identity(k)
				for j := 0; j < i; j++ {
					NewRotation(1, n).Apply(iter)
				}
				if !direct.Equal(iter) {
					t.Fatalf("n=%d l=%d: R^%d != R applied %d times: %v vs %v", n, l, i, i, direct, iter)
				}
			}
		}
	}
}

func TestInverse(t *testing.T) {
	k := 7
	cases := []Generator{
		NewTransposition(3),
		NewSwap(2, 2),
		NewSwap(3, 2),
		NewInsertion(5),
		NewSelection(5),
		NewRotation(1, 2),
		NewRotation(2, 2),
	}
	for _, g := range cases {
		inv := g.Inverse(k)
		p := perm.Random(k, perm.NewRNG(uint64(g.Index())))
		q := g.ApplyTo(p)
		inv.Apply(q)
		if !q.Equal(p) {
			t.Errorf("%s inverse %s does not undo: %v -> %v", g, inv, p, q)
		}
	}
}

func TestSelfInverse(t *testing.T) {
	k := 7
	if !NewTransposition(4).SelfInverse(k) {
		t.Error("T4 should be self-inverse")
	}
	if !NewSwap(2, 2).SelfInverse(k) {
		t.Error("S2 should be self-inverse")
	}
	if NewInsertion(4).SelfInverse(k) {
		t.Error("I4 should not be self-inverse")
	}
	if NewInsertion(2).SelfInverse(k) != true {
		// I2 swaps the first two symbols: a transposition.
		t.Error("I2 is the transposition T2 and is self-inverse")
	}
	if NewRotation(1, 2).SelfInverse(k) {
		t.Error("R1 with l=3 should not be self-inverse")
	}
}

func TestClassAndNames(t *testing.T) {
	cases := []struct {
		g     Generator
		class Class
		name  string
	}{
		{NewTransposition(2), Nucleus, "T2"},
		{NewInsertion(3), Nucleus, "I3"},
		{NewSelection(3), Nucleus, "I3'"},
		{NewSwap(2, 3), Super, "S2"},
		{NewRotation(2, 3), Super, "R2"},
	}
	for _, c := range cases {
		if c.g.Class() != c.class {
			t.Errorf("%s class = %v, want %v", c.name, c.g.Class(), c.class)
		}
		if c.g.Name() != c.name {
			t.Errorf("Name = %q, want %q", c.g.Name(), c.name)
		}
	}
	if Nucleus.String() != "nucleus" || Super.String() != "super" {
		t.Error("Class.String")
	}
	for _, k := range []Kind{Transposition, Swap, Insertion, Selection, Rotation} {
		if k.String() == "" {
			t.Errorf("Kind %d has empty name", k)
		}
	}
}

func TestAsPermMatchesApply(t *testing.T) {
	k := 9
	rng := perm.NewRNG(3)
	gens := []Generator{
		NewTransposition(5), NewInsertion(7), NewSelection(4),
		NewSwap(2, 4), NewRotation(1, 4),
	}
	for _, g := range gens {
		gp := g.AsPerm(k)
		for trial := 0; trial < 30; trial++ {
			p := perm.Random(k, rng)
			direct := g.ApplyTo(p)
			composed := p.Compose(gp)
			if !direct.Equal(composed) {
				t.Fatalf("%s: Apply=%v Compose=%v", g, direct, composed)
			}
		}
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"T1":      func() { NewTransposition(1) },
		"S1":      func() { NewSwap(1, 2) },
		"S(2,0)":  func() { NewSwap(2, 0) },
		"I1":      func() { NewInsertion(1) },
		"Sel1":    func() { NewSelection(1) },
		"R(1,0)":  func() { NewRotation(1, 0) },
		"applyKs": func() { NewTransposition(9).Apply(perm.Identity(3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestQuickGeneratorInverseProperty(t *testing.T) {
	f := func(seed uint64, pick uint8) bool {
		rng := perm.NewRNG(seed)
		n := 1 + rng.Intn(3)
		l := 2 + rng.Intn(3)
		k := n*l + 1
		var g Generator
		switch pick % 5 {
		case 0:
			g = NewTransposition(2 + rng.Intn(k-1))
		case 1:
			g = NewSwap(2+rng.Intn(l-1), n)
		case 2:
			g = NewInsertion(2 + rng.Intn(k-1))
		case 3:
			g = NewSelection(2 + rng.Intn(k-1))
		default:
			g = NewRotation(1+rng.Intn(l-1), n)
		}
		p := perm.Random(k, rng)
		q := g.ApplyTo(p)
		g.Inverse(k).Apply(q)
		return q.Equal(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
