package gen

import (
	"fmt"
	"strings"

	"repro/internal/perm"
)

// Set is an ordered collection of generators: the full move repertoire of a
// ball-arrangement game and, equivalently, the link dimensions of the
// derived Cayley graph. Order matters only for reproducible link numbering.
type Set struct {
	gens []Generator
	k    int // number of symbols the set acts on
}

// NewSet builds a generator set acting on permutations of k symbols. It
// validates that every generator fits k.
func NewSet(k int, gens ...Generator) (*Set, error) {
	if k < 2 {
		return nil, fmt.Errorf("gen: NewSet: k=%d must be >= 2", k)
	}
	if len(gens) == 0 {
		return nil, fmt.Errorf("gen: NewSet: no generators")
	}
	for _, g := range gens {
		if k < g.MinK() {
			return nil, fmt.Errorf("gen: NewSet: generator %s requires k >= %d, got %d", g.Name(), g.MinK(), k)
		}
		if g.Kind() == Rotation && (k-1)%g.BlockLen() != 0 {
			return nil, fmt.Errorf("gen: NewSet: rotation %s needs k-1 divisible by n=%d, got k=%d", g.Name(), g.BlockLen(), k)
		}
	}
	s := &Set{gens: append([]Generator(nil), gens...), k: k}
	return s, nil
}

// MustSet is like NewSet but panics on error; for tests and fixed topologies.
func MustSet(k int, gens ...Generator) *Set {
	s, err := NewSet(k, gens...)
	if err != nil {
		panic(err)
	}
	return s
}

// K returns the number of symbols the set acts on.
func (s *Set) K() int { return s.k }

// Len returns the number of generators (= out-degree of the Cayley graph).
func (s *Set) Len() int { return len(s.gens) }

// At returns the i-th generator (0-based link index).
func (s *Set) At(i int) Generator { return s.gens[i] }

// Generators returns a copy of the generator list.
func (s *Set) Generators() []Generator {
	return append([]Generator(nil), s.gens...)
}

// Names returns the paper-style names of all generators, in order.
func (s *Set) Names() []string {
	names := make([]string, len(s.gens))
	for i, g := range s.gens {
		names[i] = g.Name()
	}
	return names
}

// String renders the set as "{T2, T3, S2}".
func (s *Set) String() string {
	return "{" + strings.Join(s.Names(), ", ") + "}"
}

// NucleusCount returns how many generators are nucleus generators.
func (s *Set) NucleusCount() int {
	c := 0
	for _, g := range s.gens {
		if g.Class() == Nucleus {
			c++
		}
	}
	return c
}

// SuperCount returns how many generators are super generators. This is the
// intercluster degree of the derived network (§4.3).
func (s *Set) SuperCount() int { return s.Len() - s.NucleusCount() }

// IsInverseClosed reports whether every generator's inverse is also in the
// set. Inverse-closed sets yield undirected Cayley graphs (§3.2): each
// directed link pairs with its reversal.
func (s *Set) IsInverseClosed() bool {
	for _, g := range s.gens {
		invP := g.Inverse(s.k).AsPerm(s.k)
		found := false
		for _, h := range s.gens {
			if h.AsPerm(s.k).Equal(invP) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Perms materializes every generator as an explicit permutation, in order.
// The result is what the Cayley-graph engine composes with node labels.
func (s *Set) Perms() []perm.Perm {
	ps := make([]perm.Perm, len(s.gens))
	for i, g := range s.gens {
		ps[i] = g.AsPerm(s.k)
	}
	return ps
}

// Apply applies the i-th generator to p in place.
func (s *Set) Apply(i int, p perm.Perm) { s.gens[i].Apply(p) }

// IndexOf returns the position of the first generator whose action equals
// g's action on k symbols, or -1 if absent.
func (s *Set) IndexOf(g Generator) int {
	gp := g.AsPerm(s.k)
	for i, h := range s.gens {
		if h.AsPerm(s.k).Equal(gp) {
			return i
		}
	}
	return -1
}

// Generates reports whether the set generates the full symmetric group S_k,
// i.e. whether the derived graph is connected over all k! states. It runs a
// union-find over orbit closure using the generators' permutations applied
// to a spanning structure — implemented as a BFS over symbols' images that
// is exact and cheap (transitivity + a parity/primitivity certificate would
// not be; we instead check connectivity directly for small k and fall back
// to a transitivity necessary-condition for large k).
//
// For k <= 8 this is an exact reachability check over k! states; for larger
// k it verifies transitivity of the action on positions, which every set in
// this repository satisfies exactly when it generates S_k (all sets contain
// a prefix rotation or transposition making the action primitive).
func (s *Set) Generates() bool {
	if s.k <= 8 {
		return s.connectedExact()
	}
	return s.transitiveOnPositions()
}

func (s *Set) connectedExact() bool {
	n := perm.Factorial(s.k)
	visited := make([]bool, n)
	gens := s.Perms()
	start := perm.Identity(s.k).Rank()
	queue := []int64{start}
	visited[start] = true
	count := int64(1)
	cur := make(perm.Perm, s.k)
	scratch := make([]int, s.k)
	next := make(perm.Perm, s.k)
	for len(queue) > 0 {
		r := queue[0]
		queue = queue[1:]
		perm.UnrankInto(s.k, r, cur, scratch)
		for _, g := range gens {
			cur.ComposeInto(g, next)
			nr := next.Rank()
			if !visited[nr] {
				visited[nr] = true
				count++
				queue = append(queue, nr)
			}
		}
	}
	return count == n
}

func (s *Set) transitiveOnPositions() bool {
	// Union positions that any generator maps between; the action is
	// transitive iff all positions end in one component.
	parent := make([]int, s.k)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, g := range s.Perms() {
		for pos, img := range g {
			if img != pos+1 {
				union(pos, img-1)
			}
		}
	}
	root := find(0)
	for i := 1; i < s.k; i++ {
		if find(i) != root {
			return false
		}
	}
	return true
}
