package gen

import (
	"testing"

	"repro/internal/perm"
)

// starSet returns the generator set of a k-star: T_2..T_k.
func starSet(t *testing.T, k int) *Set {
	t.Helper()
	gens := make([]Generator, 0, k-1)
	for i := 2; i <= k; i++ {
		gens = append(gens, NewTransposition(i))
	}
	return MustSet(k, gens...)
}

func TestSetBasics(t *testing.T) {
	s := starSet(t, 5)
	if s.K() != 5 || s.Len() != 4 {
		t.Fatalf("K=%d Len=%d", s.K(), s.Len())
	}
	if got := s.String(); got != "{T2, T3, T4, T5}" {
		t.Fatalf("String = %q", got)
	}
	if s.NucleusCount() != 4 || s.SuperCount() != 0 {
		t.Fatalf("counts: nucleus=%d super=%d", s.NucleusCount(), s.SuperCount())
	}
}

func TestSetValidation(t *testing.T) {
	if _, err := NewSet(1, NewTransposition(2)); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := NewSet(5); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := NewSet(3, NewTransposition(5)); err == nil {
		t.Error("T5 on k=3 accepted")
	}
	if _, err := NewSet(6, NewRotation(1, 2)); err == nil {
		t.Error("rotation with k-1 not divisible by n accepted")
	}
	if _, err := NewSet(7, NewRotation(1, 2)); err != nil {
		t.Errorf("valid rotation rejected: %v", err)
	}
}

func TestMacroStarSetCounts(t *testing.T) {
	// MS(3,2): k=7, nucleus T2..T3 (n=2 transpositions) + swaps S2,S3.
	s := MustSet(7,
		NewTransposition(2), NewTransposition(3),
		NewSwap(2, 2), NewSwap(3, 2))
	if s.NucleusCount() != 2 {
		t.Errorf("nucleus count = %d", s.NucleusCount())
	}
	if s.SuperCount() != 2 {
		t.Errorf("super count = %d (intercluster degree)", s.SuperCount())
	}
	if !s.IsInverseClosed() {
		t.Error("MS set should be inverse-closed (undirected graph)")
	}
}

func TestInverseClosure(t *testing.T) {
	// Rotator-style set {I2, I3, I4} is NOT inverse-closed (directed graph).
	dir := MustSet(4, NewInsertion(2), NewInsertion(3), NewInsertion(4))
	if dir.IsInverseClosed() {
		t.Error("insertion-only set reported inverse-closed")
	}
	// IS set {I2..I4, I2'..I4'} is inverse-closed.
	undir := MustSet(4,
		NewInsertion(2), NewInsertion(3), NewInsertion(4),
		NewSelection(2), NewSelection(3), NewSelection(4))
	if !undir.IsInverseClosed() {
		t.Error("IS set should be inverse-closed")
	}
	// RS set with rotation pair R^1, R^{l-1} is inverse-closed.
	rs := MustSet(7,
		NewTransposition(2), NewTransposition(3),
		NewRotation(1, 2), NewRotation(2, 2))
	if !rs.IsInverseClosed() {
		t.Error("RS set with R and R^-1 should be inverse-closed")
	}
	// Single rotation R^1 with l=3 is not.
	rr := MustSet(7, NewInsertion(2), NewInsertion(3), NewRotation(1, 2))
	if rr.IsInverseClosed() {
		t.Error("RR set with single rotation reported inverse-closed")
	}
}

func TestGeneratesStarGraph(t *testing.T) {
	for k := 2; k <= 6; k++ {
		if !starSet(t, k).Generates() {
			t.Errorf("%d-star generators do not generate S_%d", k, k)
		}
	}
}

func TestGeneratesMacroStar(t *testing.T) {
	// MS(2,2): k=5, T2,T3 + S2.
	s := MustSet(5, NewTransposition(2), NewTransposition(3), NewSwap(2, 2))
	if !s.Generates() {
		t.Error("MS(2,2) generators do not generate S_5")
	}
	// MS(3,2): k=7.
	s2 := MustSet(7,
		NewTransposition(2), NewTransposition(3),
		NewSwap(2, 2), NewSwap(3, 2))
	if !s2.Generates() {
		t.Error("MS(3,2) generators do not generate S_7")
	}
}

func TestDoesNotGenerate(t *testing.T) {
	// A single transposition generates only a 2-element subgroup.
	s := MustSet(4, NewTransposition(2))
	if s.Generates() {
		t.Error("single transposition reported as generating S_4")
	}
	// Swaps alone never touch position 1: cannot generate S_k.
	s2 := MustSet(5, NewSwap(2, 2))
	if s2.Generates() {
		t.Error("swap-only set reported as generating S_5")
	}
}

func TestTransitiveOnPositionsLargeK(t *testing.T) {
	// k = 11 forces the large-k path: MIS(2,5)-style set.
	gens := []Generator{}
	for i := 2; i <= 6; i++ {
		gens = append(gens, NewInsertion(i), NewSelection(i))
	}
	gens = append(gens, NewSwap(2, 5))
	s := MustSet(11, gens...)
	if !s.Generates() {
		t.Error("MIS(2,5) set not transitive on positions")
	}
	// Swap-only set at large k is not transitive (misses nothing? it fixes
	// position 1), so it must report false.
	s2 := MustSet(11, NewSwap(2, 5))
	if s2.Generates() {
		t.Error("swap-only set transitive at k=11")
	}
}

func TestIndexOf(t *testing.T) {
	s := MustSet(7,
		NewTransposition(2), NewTransposition(3),
		NewSwap(2, 2), NewSwap(3, 2))
	if got := s.IndexOf(NewSwap(3, 2)); got != 3 {
		t.Errorf("IndexOf(S3) = %d", got)
	}
	if got := s.IndexOf(NewTransposition(7)); got != -1 {
		t.Errorf("IndexOf(T7) = %d, want -1", got)
	}
	// I2 acts identically to T2; IndexOf matches by action.
	if got := s.IndexOf(NewInsertion(2)); got != 0 {
		t.Errorf("IndexOf(I2) = %d, want 0 (same action as T2)", got)
	}
}

func TestPermsMatchGenerators(t *testing.T) {
	s := MustSet(7,
		NewTransposition(2), NewInsertion(4),
		NewSwap(2, 2), NewRotation(1, 2))
	perms := s.Perms()
	p := perm.Random(7, perm.NewRNG(9))
	for i := range perms {
		if !s.At(i).ApplyTo(p).Equal(p.Compose(perms[i])) {
			t.Errorf("generator %d: Perms mismatch", i)
		}
	}
}

func TestNamesAndGeneratorsCopy(t *testing.T) {
	s := MustSet(5, NewTransposition(2), NewSwap(2, 2))
	names := s.Names()
	if names[0] != "T2" || names[1] != "S2" {
		t.Fatalf("Names = %v", names)
	}
	gens := s.Generators()
	gens[0] = NewTransposition(3)
	if s.At(0).Name() != "T2" {
		t.Error("Generators() exposed internal slice")
	}
}
