package fault

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/perm"
	"repro/internal/sim"
)

// RoutedTopology adapts a faulted Cayley graph to the packet simulator:
// paths are exact shortest paths in the surviving graph (computed by BFS
// per source and cached), so the simulator measures end-to-end behaviour of
// fault-aware minimal routing. Only links absent from the fault set exist.
type RoutedTopology struct {
	g      *core.Graph
	faults Set
	name   string
	perms  []perm.Perm
	// pathCache[src] holds predecessor data from one BFS.
	pathCache map[int64]*bfsPaths
}

type bfsPaths struct {
	pred []int64
	via  []int8
}

// NewRoutedTopology wraps graph g with the given fault set. The surviving
// graph must keep every node reachable from every other (checked lazily per
// source; unreachable destinations surface as Path errors).
func NewRoutedTopology(g *core.Graph, faults Set) (*RoutedTopology, error) {
	if g.K() > core.MaxExplicitK {
		return nil, fmt.Errorf("fault: NewRoutedTopology: k=%d too large", g.K())
	}
	return &RoutedTopology{
		g:         g,
		faults:    faults,
		name:      g.Name() + "+faults",
		perms:     g.GeneratorSet().Perms(),
		pathCache: make(map[int64]*bfsPaths),
	}, nil
}

// Name implements sim.Topology.
func (rt *RoutedTopology) Name() string { return rt.name }

// NumNodes implements sim.Topology.
func (rt *RoutedTopology) NumNodes() int64 { return rt.g.Order() }

// Degree implements sim.Topology (failed links still occupy their index;
// they simply never appear in paths).
func (rt *RoutedTopology) Degree() int { return rt.g.GeneratorSet().Len() }

// Neighbor implements sim.Topology.
func (rt *RoutedTopology) Neighbor(node int64, link int) int64 {
	u := perm.Unrank(rt.g.K(), node)
	return u.Compose(rt.perms[link]).Rank()
}

// Path returns a shortest surviving path from src to dst as link indices.
func (rt *RoutedTopology) Path(src, dst int64) ([]int, error) {
	if src == dst {
		return nil, nil
	}
	paths, err := rt.bfsFrom(src)
	if err != nil {
		return nil, err
	}
	if paths.pred[dst] < 0 {
		return nil, fmt.Errorf("fault: Path: %d unreachable from %d under faults", dst, src)
	}
	var rev []int
	for cur := dst; cur != src; cur = paths.pred[cur] {
		rev = append(rev, int(paths.via[cur]))
	}
	out := make([]int, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out, nil
}

func (rt *RoutedTopology) bfsFrom(src int64) (*bfsPaths, error) {
	if p, ok := rt.pathCache[src]; ok {
		return p, nil
	}
	k := rt.g.K()
	n := rt.g.Order()
	pred := make([]int64, n)
	via := make([]int8, n)
	for i := range pred {
		pred[i] = -1
	}
	pred[src] = src
	queue := []int64{src}
	cur := make(perm.Perm, k)
	next := make(perm.Perm, k)
	scratch := make([]int, k)
	for head := 0; head < len(queue); head++ {
		r := queue[head]
		perm.UnrankInto(k, r, cur, scratch)
		for gi, gp := range rt.perms {
			if rt.faults[Link{Node: r, Gen: gi}] {
				continue
			}
			cur.ComposeInto(gp, next)
			nr := next.Rank()
			if pred[nr] < 0 {
				pred[nr] = r
				via[nr] = int8(gi)
				queue = append(queue, nr)
			}
		}
	}
	p := &bfsPaths{pred: pred, via: via}
	rt.pathCache[src] = p
	return p, nil
}

// Interface compliance.
var _ sim.Topology = (*RoutedTopology)(nil)
