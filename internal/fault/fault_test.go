package fault

import (
	"testing"

	"repro/internal/perm"
	"repro/internal/sim"
	"repro/internal/topology"
)

func net(t *testing.T, fam topology.Family, l, n int) *topology.Network {
	t.Helper()
	nw, err := topology.New(fam, l, n)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestBFSNoFaultsMatchesCore(t *testing.T) {
	nw := net(t, topology.MS, 2, 2)
	prof, err := BFS(nw.Graph(), nil, perm.Identity(5))
	if err != nil {
		t.Fatal(err)
	}
	base, err := nw.Graph().BFS(perm.Identity(5))
	if err != nil {
		t.Fatal(err)
	}
	if !prof.Connected || prof.Eccentricity != base.Eccentricity || prof.Mean != base.Mean {
		t.Fatalf("fault-free profile %+v differs from core BFS (ecc %d mean %f)",
			prof, base.Eccentricity, base.Mean)
	}
}

// TestSingleLinkFailureKeepsConnected: every single directed-link failure
// (mirrored) leaves MS(2,2) connected — 2-edge-connectivity of a degree-3
// vertex-symmetric graph.
func TestSingleLinkFailureKeepsConnected(t *testing.T) {
	nw := net(t, topology.MS, 2, 2)
	g := nw.Graph()
	deg := g.GeneratorSet().Len()
	// Sample every generator on a spread of nodes (full enumeration is
	// 120×3 BFS runs — fine).
	for node := int64(0); node < g.Order(); node += 5 {
		for gi := 0; gi < deg; gi++ {
			fs, err := MirrorUndirected(g, NewSet(Link{Node: node, Gen: gi}))
			if err != nil {
				t.Fatal(err)
			}
			prof, err := BFS(g, fs, perm.Identity(5))
			if err != nil {
				t.Fatal(err)
			}
			if !prof.Connected {
				t.Fatalf("single failure (%d,%d) disconnected MS(2,2)", node, gi)
			}
		}
	}
}

// TestFaultDisconnectsWhenIsolatingANode: failing all links of one node
// disconnects it.
func TestFaultDisconnectsWhenIsolatingANode(t *testing.T) {
	nw := net(t, topology.MS, 2, 2)
	g := nw.Graph()
	victim := int64(17)
	var links []Link
	for gi := 0; gi < g.GeneratorSet().Len(); gi++ {
		links = append(links, Link{Node: victim, Gen: gi})
	}
	fs, err := MirrorUndirected(g, NewSet(links...))
	if err != nil {
		t.Fatal(err)
	}
	prof, err := BFS(g, fs, perm.Identity(5))
	if err != nil {
		t.Fatal(err)
	}
	if prof.Connected {
		t.Fatal("isolating a node did not disconnect the graph")
	}
	if prof.Reachable != g.Order()-1 {
		t.Fatalf("reachable %d, want %d", prof.Reachable, g.Order()-1)
	}
}

func TestRandomSetDeterministic(t *testing.T) {
	a := RandomSet(100, 4, 10, 3)
	b := RandomSet(100, 4, 10, 3)
	if len(a) != 10 || len(b) != 10 {
		t.Fatal("size")
	}
	for l := range a {
		if !b[l] {
			t.Fatal("not deterministic")
		}
	}
}

func TestRandomTrials(t *testing.T) {
	nw := net(t, topology.MS, 2, 2)
	tr, err := RandomTrials(nw.Graph(), 3, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Runs != 20 || tr.Faults != 3 {
		t.Fatalf("trial bookkeeping: %+v", tr)
	}
	// With only 3 failed wires out of 360, the 120-node degree-3 graph stays
	// connected almost always.
	if tr.ConnectedRuns < 15 {
		t.Errorf("only %d/20 runs connected under 3 faults", tr.ConnectedRuns)
	}
	if tr.ConnectedRuns > 0 && tr.MeanDistInflation < 1.0 {
		t.Errorf("mean distance inflation %f < 1", tr.MeanDistInflation)
	}
	t.Logf("MS(2,2) with 3 random faults: %d/%d connected, worst ecc +%d, mean inflation %.4f",
		tr.ConnectedRuns, tr.Runs, tr.WorstEccDelta, tr.MeanDistInflation)
}

// TestResilienceComparison: at equal fault counts, the richer complete-RS
// stays at least as connected as the sparser RR (directed single rotation),
// matching the intuition that extra rotation generators add redundancy.
func TestResilienceComparison(t *testing.T) {
	crs := net(t, topology.CompleteRS, 3, 1) // degree 4, N = 24
	rr := net(t, topology.RR, 3, 1)          // degree 2, N = 24
	const faults, runs = 2, 30
	a, err := RandomTrials(crs.Graph(), faults, runs, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomTrials(rr.Graph(), faults, runs, 11)
	if err != nil {
		t.Fatal(err)
	}
	if a.ConnectedRuns < b.ConnectedRuns {
		t.Errorf("complete-RS (%d/%d) less resilient than RR (%d/%d)",
			a.ConnectedRuns, runs, b.ConnectedRuns, runs)
	}
	t.Logf("connected under %d faults: complete-RS %d/%d, RR %d/%d",
		faults, a.ConnectedRuns, runs, b.ConnectedRuns, runs)
}

func TestMirrorUndirectedRejectsDirected(t *testing.T) {
	rr := net(t, topology.RR, 3, 2)
	// RR's insertion generators lack inverses in the set.
	if _, err := MirrorUndirected(rr.Graph(), NewSet(Link{Node: 0, Gen: 0})); err == nil {
		t.Error("directed graph accepted by MirrorUndirected")
	}
}

func TestBFSSizeGuard(t *testing.T) {
	nw, err := topology.NewStar(11)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BFS(nw.Graph(), nil, perm.Identity(11)); err == nil {
		t.Error("k=11 accepted")
	}
}

func TestRoutedTopologyUnderFaults(t *testing.T) {
	nw := net(t, topology.MS, 2, 2)
	g := nw.Graph()
	fs, err := MirrorUndirected(g, RandomSet(g.Order(), g.GeneratorSet().Len(), 4, 9))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRoutedTopology(g, fs)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Name() == "" || rt.NumNodes() != g.Order() || rt.Degree() != g.GeneratorSet().Len() {
		t.Fatal("shape")
	}
	// Paths avoid failed links and end at the destination.
	for src := int64(0); src < rt.NumNodes(); src += 17 {
		for dst := int64(3); dst < rt.NumNodes(); dst += 23 {
			path, err := rt.Path(src, dst)
			if err != nil {
				t.Fatalf("%d->%d: %v", src, dst, err)
			}
			cur := src
			for _, link := range path {
				if fs[Link{Node: cur, Gen: link}] {
					t.Fatalf("path %d->%d uses failed link (%d,%d)", src, dst, cur, link)
				}
				cur = rt.Neighbor(cur, link)
			}
			if cur != dst {
				t.Fatalf("path %d->%d ends at %d", src, dst, cur)
			}
		}
	}
	// End-to-end simulation over the faulted network completes.
	pkts := sim.PermutationRouting(rt.NumNodes(), 3)
	res, err := sim.RunUnicast(rt, pkts, sim.AllPort, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != int64(len(pkts)) {
		t.Fatalf("delivered %d of %d under faults", res.Delivered, len(pkts))
	}
	t.Logf("faulted MS(2,2): permutation routing completed in %d steps", res.Steps)
}

func TestRoutedTopologyUnreachable(t *testing.T) {
	nw := net(t, topology.MS, 2, 2)
	g := nw.Graph()
	// Isolate node 17.
	var links []Link
	for gi := 0; gi < g.GeneratorSet().Len(); gi++ {
		links = append(links, Link{Node: 17, Gen: gi})
	}
	fs, err := MirrorUndirected(g, NewSet(links...))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRoutedTopology(g, fs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Path(0, 17); err == nil {
		t.Error("path to isolated node accepted")
	}
	if p, err := rt.Path(5, 5); err != nil || len(p) != 0 {
		t.Error("self path")
	}
}
