// Package fault measures the resilience of permutation networks to link
// failures — the fault-tolerance property the paper's introduction cites as
// one of the star graph's attractions that super Cayley graphs inherit.
// Vertex symmetry is broken by faults, so measurements run from explicit
// sources over the faulted graph.
package fault

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/perm"
)

// Link identifies one directed link: the source node rank and the generator
// (link dimension) index.
type Link struct {
	Node int64
	Gen  int
}

// Set is a collection of failed directed links.
type Set map[Link]bool

// NewSet builds a fault set from links.
func NewSet(links ...Link) Set {
	s := make(Set, len(links))
	for _, l := range links {
		s[l] = true
	}
	return s
}

// RandomSet draws `count` distinct random failed links from a graph with n
// nodes and degree deg, deterministically from the seed.
func RandomSet(n int64, deg int, count int, seed uint64) Set {
	rng := perm.NewRNG(seed)
	s := make(Set, count)
	for len(s) < count {
		l := Link{Node: int64(rng.Intn(int(n))), Gen: rng.Intn(deg)}
		s[l] = true
	}
	return s
}

// Profile reports the state of a faulted graph as seen from one source.
type Profile struct {
	// Reachable counts nodes still reachable from the source.
	Reachable int64
	// Connected is true when every node remains reachable.
	Connected bool
	// Eccentricity is the largest finite distance from the source.
	Eccentricity int
	// Mean is the average distance to reachable non-source nodes.
	Mean float64
}

// BFS runs a breadth-first search from src over g with the failed links
// removed. Undirected graphs should include both directions of a failed
// edge in the set if the physical wire is cut.
func BFS(g *core.Graph, faults Set, src perm.Perm) (*Profile, error) {
	k := g.K()
	if k > core.MaxExplicitK {
		return nil, fmt.Errorf("fault: BFS: k=%d too large", k)
	}
	n := g.Order()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	srcRank := src.Rank()
	dist[srcRank] = 0
	queue := []int64{srcRank}
	cur := make(perm.Perm, k)
	next := make(perm.Perm, k)
	scratch := make([]int, k)
	perms := g.GeneratorSet().Perms()
	reachable := int64(1)
	var sum int64
	maxD := int32(0)
	for head := 0; head < len(queue); head++ {
		r := queue[head]
		d := dist[r]
		perm.UnrankInto(k, r, cur, scratch)
		for gi, gp := range perms {
			if faults[Link{Node: r, Gen: gi}] {
				continue
			}
			cur.ComposeInto(gp, next)
			nr := next.Rank()
			if dist[nr] < 0 {
				dist[nr] = d + 1
				reachable++
				sum += int64(d + 1)
				if d+1 > maxD {
					maxD = d + 1
				}
				queue = append(queue, nr)
			}
		}
	}
	p := &Profile{
		Reachable:    reachable,
		Connected:    reachable == n,
		Eccentricity: int(maxD),
	}
	if reachable > 1 {
		p.Mean = float64(sum) / float64(reachable-1)
	}
	return p, nil
}

// MirrorUndirected extends a fault set with the reverse direction of every
// failed link, modelling a severed physical wire in an undirected Cayley
// graph. The reverse of (u, g) is (u∘g, g') where g' is the generator whose
// action inverts g.
func MirrorUndirected(g *core.Graph, faults Set) (Set, error) {
	k := g.K()
	set := g.GeneratorSet()
	perms := set.Perms()
	// For each generator find the index of its inverse action.
	invIdx := make([]int, set.Len())
	for i := range invIdx {
		invIdx[i] = -1
		invP := set.At(i).Inverse(k).AsPerm(k)
		for j := range perms {
			if perms[j].Equal(invP) {
				invIdx[i] = j
				break
			}
		}
		if invIdx[i] == -1 {
			return nil, fmt.Errorf("fault: MirrorUndirected: generator %s has no inverse in %s", set.At(i).Name(), g.Name())
		}
	}
	out := make(Set, 2*len(faults))
	buf := make(perm.Perm, k)
	scratch := make([]int, k)
	tgt := make(perm.Perm, k)
	for l := range faults {
		out[l] = true
		perm.UnrankInto(k, l.Node, buf, scratch)
		buf.ComposeInto(perms[l.Gen], tgt)
		out[Link{Node: tgt.Rank(), Gen: invIdx[l.Gen]}] = true
	}
	return out, nil
}

// Trial summarizes a random-failure experiment.
type Trial struct {
	Faults            int
	ConnectedRuns     int
	Runs              int
	WorstEccDelta     int     // worst eccentricity increase over the fault-free value
	MeanDistInflation float64 // average of (faulted mean / fault-free mean)
}

// RandomTrials injects `faults` random failed links (mirrored for
// undirected graphs), repeats `runs` times with distinct seeds, and reports
// connectivity and distance inflation from the identity source.
func RandomTrials(g *core.Graph, faults, runs int, seed uint64) (*Trial, error) {
	base, err := g.BFS(perm.Identity(g.K()))
	if err != nil {
		return nil, err
	}
	if base.Reachable != g.Order() {
		return nil, fmt.Errorf("fault: RandomTrials: %s is not connected fault-free", g.Name())
	}
	tr := &Trial{Faults: faults, Runs: runs}
	var inflationSum float64
	for r := 0; r < runs; r++ {
		fs := RandomSet(g.Order(), g.GeneratorSet().Len(), faults, seed+uint64(r))
		if g.Undirected() {
			fs, err = MirrorUndirected(g, fs)
			if err != nil {
				return nil, err
			}
		}
		prof, err := BFS(g, fs, perm.Identity(g.K()))
		if err != nil {
			return nil, err
		}
		if prof.Connected {
			tr.ConnectedRuns++
			if delta := prof.Eccentricity - base.Eccentricity; delta > tr.WorstEccDelta {
				tr.WorstEccDelta = delta
			}
			inflationSum += prof.Mean / base.Mean
		}
	}
	if tr.ConnectedRuns > 0 {
		tr.MeanDistInflation = inflationSum / float64(tr.ConnectedRuns)
	}
	return tr, nil
}
