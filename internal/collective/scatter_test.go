package collective

import (
	"testing"

	"repro/internal/perm"
	"repro/internal/sim"
	"repro/internal/topology"
)

func TestScatterTimeBounds(t *testing.T) {
	for _, tc := range []struct {
		fam  topology.Family
		l, n int
	}{
		{topology.MS, 2, 2},
		{topology.Star, 1, 4},
		{topology.CompleteRS, 3, 1},
	} {
		nw := net(t, tc.fam, tc.l, tc.n)
		tree, err := BFSTree(nw.Graph(), perm.Identity(nw.K()))
		if err != nil {
			t.Fatal(err)
		}
		for _, model := range []sim.PortModel{sim.AllPort, sim.SinglePort} {
			got, err := ScatterTime(tree, model)
			if err != nil {
				t.Fatalf("%s %v: %v", nw.Name(), model, err)
			}
			lb := ScatterLowerBound(tree, model, nw.Degree())
			if int64(got) < lb {
				t.Errorf("%s %v: scatter %d below lower bound %d", nw.Name(), model, got, lb)
			}
			// Trivial upper bound: one message per step through the root.
			if int64(got) > nw.Nodes()+int64(tree.Height) {
				t.Errorf("%s %v: scatter %d above N+height", nw.Name(), model, got)
			}
			t.Logf("%s %v: scatter %d (lower bound %d)", nw.Name(), model, got, lb)
		}
	}
}

// TestScatterSinglePortIsRootBound: under single-port the root is the
// bottleneck, so the time is close to N-1.
func TestScatterSinglePortIsRootBound(t *testing.T) {
	nw := net(t, topology.MS, 2, 2)
	tree, err := BFSTree(nw.Graph(), perm.Identity(5))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ScatterTime(tree, sim.SinglePort)
	if err != nil {
		t.Fatal(err)
	}
	n := int(nw.Nodes())
	if got < n-1 {
		t.Errorf("single-port scatter %d below N-1 = %d", got, n-1)
	}
	if got > n-1+tree.Height {
		t.Errorf("single-port scatter %d above N-1+height = %d", got, n-1+tree.Height)
	}
}

// TestScatterAllPortNearBandwidthBound: with farthest-first scheduling the
// all-port scatter should land within a small factor of the max(bandwidth,
// depth) bound.
func TestScatterAllPortNearBandwidthBound(t *testing.T) {
	nw := net(t, topology.CompleteRS, 3, 1)
	tree, err := BFSTree(nw.Graph(), perm.Identity(4))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ScatterTime(tree, sim.AllPort)
	if err != nil {
		t.Fatal(err)
	}
	lb := ScatterLowerBound(tree, sim.AllPort, nw.Degree())
	if int64(got) > 3*lb {
		t.Errorf("all-port scatter %d more than 3x the lower bound %d", got, lb)
	}
}
