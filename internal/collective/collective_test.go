package collective

import (
	"testing"

	"repro/internal/perm"
	"repro/internal/sim"
	"repro/internal/topology"
)

func net(t *testing.T, fam topology.Family, l, n int) *topology.Network {
	t.Helper()
	nw, err := topology.New(fam, l, n)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestBFSTreeBasics(t *testing.T) {
	nw := net(t, topology.MS, 2, 2)
	tree, err := BFSTree(nw.Graph(), perm.Identity(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	d, err := nw.Graph().Diameter()
	if err != nil {
		t.Fatal(err)
	}
	if tree.Height != d {
		t.Errorf("BFS tree height %d != diameter %d", tree.Height, d)
	}
	// Children counts: total children = N - 1.
	total := 0
	for _, cs := range tree.Children {
		total += len(cs)
	}
	if int64(total) != nw.Nodes()-1 {
		t.Errorf("tree has %d children links, want %d", total, nw.Nodes()-1)
	}
}

func TestBFSTreeFromNonIdentityRoot(t *testing.T) {
	nw := net(t, topology.CompleteRS, 3, 1)
	root := perm.MustNew([]int{3, 1, 4, 2})
	tree, err := BFSTree(nw.Graph(), root)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if tree.Root != root.Rank() {
		t.Error("root rank mismatch")
	}
}

func TestBFSTreeRejectsDisconnected(t *testing.T) {
	// A star graph restricted to one transposition is disconnected; build a
	// tiny disconnected Cayley graph through the public constructors is not
	// possible, so use the graph engine directly via a star graph with k=2
	// (connected) — instead test the size guard with k = 11.
	nw, err := topology.NewStar(11)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BFSTree(nw.Graph(), perm.Identity(11)); err == nil {
		t.Error("k=11 BFS tree should fail the size guard")
	}
}

// TestBroadcastTimes: all-port tree broadcast time = diameter; single-port
// time is between ⌈log2 N⌉ (information-theoretic bound) and N-1.
func TestBroadcastTimes(t *testing.T) {
	for _, tc := range []struct {
		fam  topology.Family
		l, n int
	}{
		{topology.MS, 2, 2},
		{topology.Star, 1, 4},
		{topology.CompleteRS, 3, 1},
		{topology.MR, 2, 2},
	} {
		nw := net(t, tc.fam, tc.l, tc.n)
		tree, err := BFSTree(nw.Graph(), perm.Identity(nw.K()))
		if err != nil {
			t.Fatal(err)
		}
		all := tree.BroadcastTime(sim.AllPort)
		single := tree.BroadcastTime(sim.SinglePort)
		if all != tree.Height {
			t.Errorf("%s: all-port time %d != height %d", nw.Name(), all, tree.Height)
		}
		if single < all {
			t.Errorf("%s: single-port %d < all-port %d", nw.Name(), single, all)
		}
		log2 := 0
		for v := nw.Nodes() - 1; v > 0; v >>= 1 {
			log2++
		}
		if single < log2 {
			t.Errorf("%s: single-port time %d below log2(N) = %d", nw.Name(), single, log2)
		}
		if int64(single) > nw.Nodes()-1 {
			t.Errorf("%s: single-port time %d above N-1", nw.Name(), single)
		}
		t.Logf("%s: height=%d single-port=%d", nw.Name(), tree.Height, single)
	}
}

// TestSinglePortScheduleOnPath: a path graph degenerates the recurrence to
// depth (each node has one child).
func TestSinglePortScheduleKnownShape(t *testing.T) {
	// Binomial-tree behaviour: broadcasting on the 4-cube via its BFS tree
	// should take exactly 4 steps single-port if the tree is a binomial
	// tree. Our BFS tree may be slightly worse but never better than log2 N.
	nw, err := topology.NewStar(4)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := BFSTree(nw.Graph(), perm.Identity(4))
	if err != nil {
		t.Fatal(err)
	}
	single := tree.BroadcastTime(sim.SinglePort)
	if single < 5 { // ceil(log2 24) = 5
		t.Errorf("single-port %d below ceil(log2 24)", single)
	}
}

// TestMNBPipelinedBoundVsSimulation: the pipelined tree bound must be an
// upper bound consistent with the flooding simulator's measured MNB time,
// up to the constant-factor slack of flooding (flooding is at most the
// pipelined bound for all-port because every message flows on every link).
func TestMNBPipelinedBoundVsSimulation(t *testing.T) {
	nw := net(t, topology.MS, 2, 2)
	tree, err := BFSTree(nw.Graph(), perm.Identity(5))
	if err != nil {
		t.Fatal(err)
	}
	topo, err := sim.NewPermTopology(nw)
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range []sim.PortModel{sim.AllPort, sim.SinglePort} {
		bound := MNBPipelinedBound(tree, model, nw.Degree())
		res, err := sim.RunBroadcast(topo, model, 0)
		if err != nil {
			t.Fatal(err)
		}
		// The flood must respect the trivial lower bound and the tree bound
		// should not be absurdly below the flood's measurement (sanity of
		// both models).
		lb := sim.MNBLowerBound(nw.Nodes(), nw.Degree(), model)
		if int64(res.Steps) < lb {
			t.Errorf("%v: flood %d below lower bound %d", model, res.Steps, lb)
		}
		if bound < lb {
			t.Errorf("%v: pipelined bound %d below lower bound %d", model, bound, lb)
		}
		t.Logf("%v: lower=%d flood=%d pipelined-bound=%d", model, lb, res.Steps, bound)
	}
}

func TestSimulateTreeMNB(t *testing.T) {
	nw := net(t, topology.MS, 2, 2)
	topo, err := sim.NewPermTopology(nw)
	if err != nil {
		t.Fatal(err)
	}
	n := nw.Nodes()
	for _, model := range []sim.PortModel{sim.AllPort, sim.SinglePort} {
		res, err := SimulateTreeMNB(nw.Graph(), model, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Each message crosses exactly N-1 tree edges.
		if res.TotalHops != n*(n-1) {
			t.Fatalf("%v: hops %d, want %d", model, res.TotalHops, n*(n-1))
		}
		lb := sim.MNBLowerBound(n, nw.Degree(), model)
		if int64(res.Steps) < lb {
			t.Errorf("%v: tree MNB %d below lower bound %d", model, res.Steps, lb)
		}
		flood, err := sim.RunBroadcast(topo, model, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Tree MNB moves ~d× fewer messages than flooding.
		if res.TotalHops >= flood.TotalHops {
			t.Errorf("%v: tree hops %d not below flood hops %d", model, res.TotalHops, flood.TotalHops)
		}
		// Vertex symmetry should keep the tree loads reasonably balanced.
		if res.LoadGini > 0.6 {
			t.Errorf("%v: tree-MNB load Gini %.3f suspiciously unbalanced", model, res.LoadGini)
		}
		t.Logf("%v: tree MNB %d steps (flood %d, lower bound %d), hops %d (flood %d), gini %.3f",
			model, res.Steps, flood.Steps, lb, res.TotalHops, flood.TotalHops, res.LoadGini)
	}
}

func TestSimulateTreeMNBGuards(t *testing.T) {
	nw := net(t, topology.MS, 2, 2)
	if _, err := SimulateTreeMNB(nw.Graph(), sim.AllPort, 3); err == nil {
		t.Error("tiny maxSteps should time out")
	}
	big, err := topology.NewStar(8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SimulateTreeMNB(big.Graph(), sim.AllPort, 0); err == nil {
		t.Error("oversized instance accepted")
	}
}
