package collective

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Scatter models a single-node scatter (one-to-all personalized
// communication): the root holds N-1 distinct messages, one per other node.
// Gather is its time-reversal and has identical completion time on an
// undirected network, so one analysis covers both.
//
// Lower bounds: the root must push N-1 messages through its ports
// (⌈(N-1)/ports⌉ steps) and the farthest node needs at least depth steps.

// ScatterLowerBound returns max(⌈(N-1)/ports⌉, height).
func ScatterLowerBound(t *Tree, model sim.PortModel, outDegree int) int64 {
	n := int64(len(t.Parent))
	ports := int64(1)
	if model == sim.AllPort && outDegree > 1 {
		ports = int64(outDegree)
	}
	bw := (n - 1 + ports - 1) / ports
	if int64(t.Height) > bw {
		return int64(t.Height)
	}
	return bw
}

// ScatterTime computes the completion time of a scatter along the tree with
// greedy scheduling: every node forwards, each step, the queued message
// whose destination subtree is deepest (farthest-first), on the link toward
// it; single-port nodes send one message per step, all-port nodes one per
// child link per step.
func ScatterTime(t *Tree, model sim.PortModel) (int, error) {
	n := int64(len(t.Parent))
	if n == 0 {
		return 0, fmt.Errorf("collective: ScatterTime: empty tree")
	}
	// For each node, the child whose subtree contains a given destination:
	// climb from the destination to the root once, recording the path.
	// Message m (destination m) travels root -> m along tree edges.
	// Per-node queues of pending messages, keyed by next-hop child.
	depth := t.Depth
	// remaining[v] = messages queued at v (their destinations).
	queues := make(map[int64][]int64, 1)
	var dests []int64
	for v := int64(0); v < n; v++ {
		if v != t.Root {
			dests = append(dests, v)
		}
	}
	// Farthest-first service order.
	sort.Slice(dests, func(i, j int) bool {
		if depth[dests[i]] != depth[dests[j]] {
			return depth[dests[i]] > depth[dests[j]]
		}
		return dests[i] < dests[j]
	})
	queues[t.Root] = dests
	// nextHop(v, dst): the child of v on the path to dst. Precompute parent
	// chains lazily.
	nextHop := func(v, dst int64) int64 {
		cur := dst
		for t.Parent[cur] != v {
			cur = t.Parent[cur]
			if cur < 0 {
				panic("collective: ScatterTime: destination not under node")
			}
		}
		return cur
	}
	delivered := int64(0)
	for step := 1; ; step++ {
		if step > int(n)*2+t.Height+2 {
			return 0, fmt.Errorf("collective: ScatterTime: no convergence")
		}
		type move struct {
			to  int64
			msg int64
		}
		var moves []move
		for v, q := range queues {
			if len(q) == 0 {
				continue
			}
			switch model {
			case sim.SinglePort:
				// Send the first (farthest) message.
				moves = append(moves, move{to: nextHop(v, q[0]), msg: q[0]})
				queues[v] = q[1:]
			case sim.AllPort:
				// One message per distinct child link.
				usedLink := map[int64]bool{}
				var rest []int64
				for _, m := range q {
					h := nextHop(v, m)
					if usedLink[h] {
						rest = append(rest, m)
						continue
					}
					usedLink[h] = true
					moves = append(moves, move{to: h, msg: m})
				}
				queues[v] = rest
			}
		}
		// Deterministic arrival order.
		sort.Slice(moves, func(i, j int) bool {
			if moves[i].to != moves[j].to {
				return moves[i].to < moves[j].to
			}
			return moves[i].msg < moves[j].msg
		})
		for _, mv := range moves {
			if mv.to == mv.msg {
				delivered++
				continue
			}
			// Keep farthest-first order within the receiving queue.
			q := queues[mv.to]
			idx := sort.Search(len(q), func(i int) bool {
				if depth[q[i]] != depth[mv.msg] {
					return depth[q[i]] < depth[mv.msg]
				}
				return q[i] >= mv.msg
			})
			q = append(q, 0)
			copy(q[idx+1:], q[idx:])
			q[idx] = mv.msg
			queues[mv.to] = q
		}
		if delivered == n-1 {
			return step, nil
		}
	}
}
