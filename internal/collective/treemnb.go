package collective

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/perm"
	"repro/internal/sim"
)

// TreeMNBResult reports a simulated multinode broadcast in which every
// node's message travels along that node's own translate of a base BFS
// spanning tree (vertex symmetry gives every source an isomorphic tree).
// Compared to flooding, each message crosses exactly N-1 links, so the
// total traffic is N(N-1) instead of ~N²·d — this is the structured MNB
// whose asymptotic optimality §5 asserts.
type TreeMNBResult struct {
	Steps     int
	TotalHops int64
	// MaxLinkLoad and Gini quantify how evenly the N translated trees share
	// the physical links.
	MaxLinkLoad int64
	LoadGini    float64
}

// SimulateTreeMNB runs the translated-tree MNB on a permutation network's
// Cayley graph (k <= 7 keeps the O(N²) message state small). Each directed
// link carries at most one message per step; single-port nodes additionally
// send on at most one link per step.
func SimulateTreeMNB(g *core.Graph, model sim.PortModel, maxSteps int) (*TreeMNBResult, error) {
	k := g.K()
	n := g.Order()
	if n > 1<<12 {
		return nil, fmt.Errorf("collective: SimulateTreeMNB: N=%d too large", n)
	}
	if maxSteps <= 0 {
		maxSteps = 1 << 20
	}
	base, err := BFSTree(g, perm.Identity(k))
	if err != nil {
		return nil, err
	}
	// Precompute node permutations and inverses by rank, plus adjacency
	// link lookup.
	perms := make([]perm.Perm, n)
	for r := int64(0); r < n; r++ {
		perms[r] = perm.Unrank(k, r)
	}
	invRank := make([]int64, n)
	for r := int64(0); r < n; r++ {
		invRank[r] = perms[r].Inverse().Rank()
	}
	gens := g.GeneratorSet().Perms()
	deg := len(gens)
	// linkTo[u] maps neighbor rank -> link index; nbr[u][link] is the
	// endpoint of u's link-th outgoing link.
	linkTo := make([]map[int64]int, n)
	nbr := make([][]int64, n)
	for r := int64(0); r < n; r++ {
		m := make(map[int64]int, deg)
		row := make([]int64, deg)
		for li, gp := range gens {
			t := perms[r].Compose(gp).Rank()
			m[t] = li
			row[li] = t
		}
		linkTo[r] = m
		nbr[r] = row
	}
	mul := func(a, b int64) int64 { // rank of perms[a] ∘ perms[b]
		return perms[a].Compose(perms[b]).Rank()
	}
	// childrenOf(s, u): children of node u in the tree rooted at s:
	// s ∘ children_base(s⁻¹ ∘ u).
	childrenOf := func(s, u int64) []int64 {
		baseNode := mul(invRank[s], u)
		baseKids := base.Children[baseNode]
		if len(baseKids) == 0 {
			return nil
		}
		kids := make([]int64, len(baseKids))
		for i, c := range baseKids {
			kids[i] = mul(s, c)
		}
		return kids
	}
	// queues[u][link] = pending message sources.
	queues := make([][][]int64, n)
	for i := range queues {
		queues[i] = make([][]int64, deg)
	}
	loads := make([][]int64, n)
	for i := range loads {
		loads[i] = make([]int64, deg)
	}
	res := &TreeMNBResult{}
	remaining := n * (n - 1)
	enqueue := func(u, msg int64) {
		for _, c := range childrenOf(msg, u) {
			li, ok := linkTo[u][c]
			if !ok {
				panic("collective: SimulateTreeMNB: tree edge is not a graph link")
			}
			queues[u][li] = append(queues[u][li], msg)
		}
	}
	for s := int64(0); s < n; s++ {
		enqueue(s, s)
	}
	rot := make([]int, n)
	type arrival struct {
		node, msg int64
	}
	var arrivals []arrival
	for step := 0; remaining > 0; step++ {
		if step >= maxSteps {
			return nil, fmt.Errorf("collective: SimulateTreeMNB: %d informs missing after %d steps", remaining, maxSteps)
		}
		arrivals = arrivals[:0]
		for u := int64(0); u < n; u++ {
			q := queues[u]
			send := func(link int) {
				msg := q[link][0]
				q[link] = q[link][1:]
				loads[u][link]++
				res.TotalHops++
				arrivals = append(arrivals, arrival{node: nbr[u][link], msg: msg})
			}
			switch model {
			case sim.AllPort:
				for link := 0; link < deg; link++ {
					if len(q[link]) > 0 {
						send(link)
					}
				}
			case sim.SinglePort:
				for probe := 0; probe < deg; probe++ {
					link := (rot[u] + probe) % deg
					if len(q[link]) > 0 {
						send(link)
						rot[u] = (link + 1) % deg
						break
					}
				}
			}
		}
		// Deterministic processing order.
		sort.Slice(arrivals, func(i, j int) bool {
			if arrivals[i].node != arrivals[j].node {
				return arrivals[i].node < arrivals[j].node
			}
			return arrivals[i].msg < arrivals[j].msg
		})
		for _, a := range arrivals {
			remaining--
			enqueue(a.node, a.msg)
		}
		res.Steps = step + 1
	}
	flat := make([]int64, 0, n*int64(deg))
	for u := int64(0); u < n; u++ {
		for link := 0; link < deg; link++ {
			if loads[u][link] > res.MaxLinkLoad {
				res.MaxLinkLoad = loads[u][link]
			}
			flat = append(flat, loads[u][link])
		}
	}
	res.LoadGini = metrics.LoadGini(flat)
	return res, nil
}
