// Package collective implements structured collective-communication
// algorithms on Cayley graphs: spanning-tree single-node broadcast and its
// scheduling under the single-port and all-port models. Together with the
// flooding simulator in internal/sim it covers the multinode-broadcast (MNB)
// claims of §1 and §5: MNB completion on a vertex-symmetric network is
// bounded by pipelining N single-node broadcasts over shifted spanning
// trees, and the all-port broadcast time of any node equals the graph
// eccentricity (= diameter).
package collective

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/perm"
	"repro/internal/sim"
)

// Tree is a spanning tree of a graph, stored as parent links over node
// ranks.
type Tree struct {
	Root int64
	// Parent[v] is v's parent rank; Parent[Root] = -1.
	Parent []int64
	// Depth[v] is the hop distance from the root.
	Depth []int32
	// Children lists each node's children, ordered by subtree size
	// (largest first) — the order optimal single-port scheduling serves
	// them in.
	Children map[int64][]int64
	// Height is the tree height (= root eccentricity for a BFS tree).
	Height int
}

// BFSTree builds a breadth-first spanning tree of a Cayley graph from the
// given root. For a vertex-symmetric graph its height equals the diameter.
func BFSTree(g *core.Graph, root perm.Perm) (*Tree, error) {
	res, err := g.BFS(root)
	if err != nil {
		return nil, err
	}
	if res.Reachable != g.Order() {
		return nil, fmt.Errorf("collective: BFSTree: graph not connected from %v", root)
	}
	k := g.K()
	n := g.Order()
	parent := make([]int64, n)
	for i := range parent {
		parent[i] = -1
	}
	// Rebuild parents: for each node at distance d > 0, pick the first
	// in-neighbor at distance d-1. In-neighbors of v are v∘g⁻¹; enumerate by
	// applying each generator's inverse.
	set := g.GeneratorSet()
	invPerms := make([]perm.Perm, set.Len())
	for i, gg := range set.Generators() {
		invPerms[i] = gg.Inverse(k).AsPerm(k)
	}
	cur := make(perm.Perm, k)
	pre := make(perm.Perm, k)
	scratch := make([]int, k)
	children := make(map[int64][]int64)
	for v := int64(0); v < n; v++ {
		d := res.Dist.At(v)
		if d <= 0 {
			continue
		}
		perm.UnrankInto(k, v, cur, scratch)
		for _, ip := range invPerms {
			cur.ComposeInto(ip, pre)
			u := pre.Rank()
			if res.Dist.At(u) == d-1 {
				parent[v] = u
				children[u] = append(children[u], v)
				break
			}
		}
		if parent[v] == -1 {
			return nil, fmt.Errorf("collective: BFSTree: node %d at depth %d has no parent", v, d)
		}
	}
	t := &Tree{
		Root:     root.Rank(),
		Parent:   parent,
		Depth:    res.Dist.Int32Slice(),
		Children: children,
		Height:   res.Eccentricity,
	}
	t.sortChildrenBySubtree()
	return t, nil
}

// sortChildrenBySubtree orders every child list by decreasing subtree size,
// the order that minimizes single-port broadcast time on a fixed tree.
func (t *Tree) sortChildrenBySubtree() {
	size := make(map[int64]int64, len(t.Parent))
	// Process nodes by decreasing depth so children are done before parents.
	order := make([]int64, 0, len(t.Parent))
	for v := range t.Parent {
		order = append(order, int64(v))
	}
	sort.Slice(order, func(i, j int) bool { return t.Depth[order[i]] > t.Depth[order[j]] })
	for _, v := range order {
		s := int64(1)
		for _, c := range t.Children[v] {
			s += size[c]
		}
		size[v] = s
	}
	for v := range t.Children {
		cs := t.Children[v]
		sort.Slice(cs, func(i, j int) bool {
			if size[cs[i]] != size[cs[j]] {
				return size[cs[i]] > size[cs[j]]
			}
			return cs[i] < cs[j] // deterministic tie-break
		})
	}
}

// Validate checks the tree spans the graph consistently.
func (t *Tree) Validate() error {
	n := int64(len(t.Parent))
	seen := int64(0)
	for v := int64(0); v < n; v++ {
		if v == t.Root {
			if t.Parent[v] != -1 {
				return fmt.Errorf("collective: root has parent %d", t.Parent[v])
			}
			seen++
			continue
		}
		p := t.Parent[v]
		if p < 0 || p >= n {
			return fmt.Errorf("collective: node %d has invalid parent %d", v, p)
		}
		if t.Depth[v] != t.Depth[p]+1 {
			return fmt.Errorf("collective: node %d depth %d, parent depth %d", v, t.Depth[v], t.Depth[p])
		}
		seen++
	}
	if seen != n {
		return fmt.Errorf("collective: tree covers %d of %d nodes", seen, n)
	}
	return nil
}

// BroadcastTime returns the completion time of a single-node broadcast from
// the root along the tree. All-port: every informed node forwards to all
// children simultaneously, so the time is the tree height. Single-port:
// each informed node serves one child per step, largest subtree first;
// computed by the classical recurrence
//
//	T(v) = max over children c (ordered) of (index(c) + 1 + T(c)).
func (t *Tree) BroadcastTime(model sim.PortModel) int {
	if model == sim.AllPort {
		return t.Height
	}
	memo := make(map[int64]int, len(t.Parent))
	// Bottom-up over decreasing depth.
	order := make([]int64, 0, len(t.Parent))
	for v := range t.Parent {
		order = append(order, int64(v))
	}
	sort.Slice(order, func(i, j int) bool { return t.Depth[order[i]] > t.Depth[order[j]] })
	for _, v := range order {
		best := 0
		for i, c := range t.Children[v] {
			if tt := i + 1 + memo[c]; tt > best {
				best = tt
			}
		}
		memo[v] = best
	}
	return memo[t.Root]
}

// MNBPipelinedBound returns an upper bound on multinode-broadcast time
// obtained by pipelining the N single-node broadcasts over the same tree
// shape: each of the N messages needs T_tree steps and a node receives at
// most one message per step per incoming link, so
//
//	T_MNB <= T_tree + (N - 1) / inPorts
//
// with inPorts = 1 (single-port) or the in-degree (all-port).
func MNBPipelinedBound(t *Tree, model sim.PortModel, inDegree int) int64 {
	n := int64(len(t.Parent))
	single := int64(t.BroadcastTime(model))
	if model == sim.SinglePort || inDegree < 1 {
		return single + (n - 1)
	}
	return single + (n-1+int64(inDegree)-1)/int64(inDegree)
}
