package scg

import (
	"strings"
	"testing"
)

func TestGameStatsFacade(t *testing.T) {
	rules, err := NewGame(3, 2, InsertionBalls, RotateBoxesAll)
	if err != nil {
		t.Fatal(err)
	}
	u, err := ParseNode("5342671")
	if err != nil {
		t.Fatal(err)
	}
	moves, err := Solve(rules, u)
	if err != nil {
		t.Fatal(err)
	}
	st := AnalyzeGame(rules, u, moves)
	if st.Moves != len(moves) {
		t.Fatal("stats moves")
	}
	if st.Color0Events > Color0Bound(rules) {
		t.Fatalf("color-0 events %d above bound %d", st.Color0Events, Color0Bound(rules))
	}
	if got := FormatBoxes(rules, u); !strings.HasPrefix(got, "5 [34]") {
		t.Fatalf("FormatBoxes = %q", got)
	}
}

func TestRoutingStretchFacade(t *testing.T) {
	nw, err := NewCompleteRotationStar(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, err := MeasureRoutingStretch(nw, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st.Pairs == 0 || st.MeanStretch < 1 {
		t.Fatalf("stretch %+v", st)
	}
	src, dst := RandomNode(5, 1), RandomNode(5, 2)
	links, err := ShortestRoute(nw, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	moves, err := nw.Route(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) < len(links) {
		t.Fatalf("algorithmic route %d shorter than exact %d", len(moves), len(links))
	}
}

func TestOpenLoopFacade(t *testing.T) {
	nw, err := NewMacroStar(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := NewSimNetwork(nw)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunOpenLoop(topo, 0.05, 100, AllPort, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected == 0 || res.Delivered+res.Backlog != res.Injected {
		t.Fatalf("open loop conservation: %+v", res)
	}
	sat, err := SaturationThroughput(topo, 60, AllPort, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sat <= 0 || sat > 1 {
		t.Fatalf("saturation %v", sat)
	}
}

func TestFacadeCoverageSweep(t *testing.T) {
	// New dispatch + formulas.
	nw, err := New(CompleteRISFamily, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	deg, err := DegreeFormula(CompleteRISFamily, 3, 2)
	if err != nil || deg != nw.Degree() {
		t.Fatalf("DegreeFormula %d vs %d (%v)", deg, nw.Degree(), err)
	}
	ub, err := DiameterUpperBoundFormula(CompleteRISFamily, 3, 2)
	if err != nil || ub != nw.DiameterUpperBound() {
		t.Fatalf("DiameterUpperBoundFormula %d vs %d (%v)", ub, nw.DiameterUpperBound(), err)
	}

	// Star -> MS emulation facade.
	rep, err := MeasureStarIntoMS(3, 2, 0)
	if err != nil || rep.Dilation != 3 {
		t.Fatalf("MeasureStarIntoMS: %+v %v", rep, err)
	}
	star, err := SolveStar(RandomNode(7, 4))
	if err != nil {
		t.Fatal(err)
	}
	msMoves, err := EmulateStarOnMS(3, 2, star)
	if err != nil || len(msMoves) > 3*len(star) {
		t.Fatalf("EmulateStarOnMS: %d vs %d (%v)", len(msMoves), len(star), err)
	}

	// Optimal distance facade.
	rules, err := NewGame(2, 2, TranspositionBalls, SwapBoxes)
	if err != nil {
		t.Fatal(err)
	}
	d, err := GameDistance(rules, RandomNode(5, 6), 0)
	if err != nil || d < 1 {
		t.Fatalf("GameDistance: %d %v", d, err)
	}

	// Comparison table + renderers.
	rows, err := CompareTable(2, 2, true)
	if err != nil || len(rows) != 10 {
		t.Fatalf("CompareTable: %d rows %v", len(rows), err)
	}
	if RenderCompareTable(rows) == "" {
		t.Fatal("RenderCompareTable")
	}
	f4, err := Fig4Degrees()
	if err != nil {
		t.Fatal(err)
	}
	if RenderASCIIFigure("f4", f4, 40, 12, false) == "" {
		t.Fatal("RenderASCIIFigure")
	}

	// Buffered sim + hotspot facade.
	msNw, err := NewMacroStar(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := NewSimNetwork(msNw)
	if err != nil {
		t.Fatal(err)
	}
	pkts := HotspotWorkload(topo.NumNodes(), 200, 0, 0.3, 2)
	res, err := RunUnicastBuffered(topo, pkts, AllPort, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != int64(len(pkts)) {
		t.Fatalf("buffered delivered %d of %d", res.Delivered, len(pkts))
	}

	// Fault-routed topology facade.
	fs, err := MirrorFaultsUndirected(msNw, NewFaultSet(FaultLink{Node: 9, Gen: 2}))
	if err != nil {
		t.Fatal(err)
	}
	ft, err := NewFaultRoutedTopology(msNw, fs)
	if err != nil {
		t.Fatal(err)
	}
	fres, err := RunUnicast(ft, PermutationRouting(ft.NumNodes(), 8), AllPort, 0)
	if err != nil || fres.Delivered == 0 {
		t.Fatalf("fault-routed run: %v %v", fres, err)
	}

	// SIP facade round trip.
	sipRules, err := NewGame(3, 2, TranspositionBalls, SwapBoxes)
	if err != nil {
		t.Fatal(err)
	}
	u := IPLabel{2, 4, 1, 3, 2, 1, 3}
	moves, err := SolveSIP(sipRules, u)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySIP(sipRules, u, moves); err != nil {
		t.Fatal(err)
	}
	goal := SIPGoal(3, 2)
	if goal.String() != "4112233" {
		t.Fatalf("SIPGoal = %v", goal)
	}
}
