package scg

// Façade for the routing-quality and steady-state-throughput analysis
// tools.

import (
	"repro/internal/bag"
	"repro/internal/core"
	"repro/internal/figures"
	"repro/internal/sim"
)

// GameStats summarizes a solved game (move mix, color-0 waste).
type GameStats = bag.Stats

// AnalyzeGame replays a solution and gathers its statistics.
func AnalyzeGame(rules GameRules, u Node, moves []Move) GameStats {
	return bag.Analyze(rules, u, moves)
}

// Color0Bound returns the §2.3 bound on wasted color-0 moves for the rules.
func Color0Bound(rules GameRules) int { return bag.Color0Bound(rules) }

// FormatBoxes renders a configuration as the paper's figures draw it, e.g.
// "5 [34][26][71]".
func FormatBoxes(rules GameRules, u Node) string { return bag.FormatBoxes(rules.Layout, u) }

// StretchStats summarizes routing quality versus exact shortest paths.
type StretchStats = core.StretchStats

// MeasureRoutingStretch samples random pairs and compares the network's
// game-solver routes against exact BFS shortest paths (k <= 10).
func MeasureRoutingStretch(nw *Network, pairs int, seed uint64) (*StretchStats, error) {
	return nw.Graph().MeasureStretch(pairs, seed, func(src, dst Node) (int, error) {
		return nw.RouteLen(src, dst)
	})
}

// ShortestRoute returns an exact minimum-hop link-index sequence between two
// nodes, found by BFS (k <= 10). For algorithmic routing use Network.Route.
func ShortestRoute(nw *Network, src, dst Node) ([]int, error) {
	return nw.Graph().ShortestPath(src, dst)
}

// OpenLoopResult reports a steady-state traffic run.
type OpenLoopResult = sim.OpenLoopResult

// RunOpenLoop injects Bernoulli uniform-random traffic at the given rate
// (packets/node/step) for the horizon and measures throughput and latency.
func RunOpenLoop(topo SimTopology, rate float64, steps int, model PortModel, seed uint64) (*OpenLoopResult, error) {
	return sim.RunOpenLoop(topo, rate, steps, model, seed)
}

// SaturationThroughput estimates per-node capacity by sweeping offered
// rates.
func SaturationThroughput(topo SimTopology, steps int, model PortModel, seed uint64) (float64, error) {
	return sim.SaturationThroughput(topo, steps, model, seed)
}

// SolveOptimal finds a provably shortest game solution by iterative-
// deepening A* — exact routing without BFS memory; practical for short
// distances at any k and for full instances at k <= ~7.
func SolveOptimal(rules GameRules, u Node, maxDepth int) ([]Move, error) {
	return bag.SolveOptimal(rules, u, maxDepth)
}

// GameDistance returns the exact game distance (optimal solution length).
func GameDistance(rules GameRules, u Node, maxDepth int) (int, error) {
	return bag.Distance(rules, u, maxDepth)
}

// CompareRow is one row of the §4.1 comparison table.
type CompareRow = figures.CompareRow

// CompareTable compares all families at (l,n); exact=true measures
// diameters by BFS (k <= 10).
func CompareTable(l, n int, exact bool) ([]CompareRow, error) {
	return figures.CompareTable(l, n, exact)
}

// RenderCompareTable renders the §4.1 comparison as text.
func RenderCompareTable(rows []CompareRow) string { return figures.RenderCompareTable(rows) }

// RenderASCIIFigure draws figure series as a terminal scatter plot.
func RenderASCIIFigure(title string, series []FigureSeries, width, height int, logY bool) string {
	return figures.RenderASCII(title, series, width, height, logY)
}

// RunUnicastBuffered is RunUnicast with finite per-link buffers and credit
// flow control; it reports deadlock explicitly when blocking dependencies
// cycle.
func RunUnicastBuffered(topo SimTopology, pkts []SimPacket, model PortModel, bufCap, maxSteps int) (*SimResult, error) {
	return sim.RunUnicastBuffered(topo, pkts, model, bufCap, maxSteps)
}

// HotspotWorkload builds traffic with a fraction of packets aimed at one
// node.
func HotspotWorkload(n int64, count int, hot int64, fraction float64, seed uint64) []SimPacket {
	return sim.Hotspot(n, count, hot, fraction, seed)
}
