package scg

// Façade for the extension modules: §3.3.4 network variants, spanning-tree
// collectives, fault-tolerance measurement, and the pin-limited throughput
// model.

import (
	"repro/internal/collective"
	"repro/internal/embed"
	"repro/internal/fault"
	"repro/internal/figures"
	"repro/internal/metrics"
	"repro/internal/topology"
)

// --- §3.3.4 network variants ---------------------------------------------------

// NewRotationSubsetStar builds a star-nucleus network whose super
// generators are the rotations R^e for e in exps — cost/performance between
// RS and complete-RS (§3.3.4).
func NewRotationSubsetStar(l, n int, exps []int) (*Network, error) {
	return topology.NewRotationSubsetStar(l, n, exps)
}

// NewRecursiveMS builds the recursive macro-star MS(l; l1, n1), replacing
// each (n+1)-star nucleus of MS(l, l1·n1) with an MS(l1,n1) network
// (§3.3.4).
func NewRecursiveMS(l, l1, n1 int) (*Network, error) {
	return topology.NewRecursiveMS(l, l1, n1)
}

// RotationExpansion expresses a rotation by t box positions as a minimal
// word over the available rotation exponents modulo l.
func RotationExpansion(l, t int, exps []int) ([]int, error) {
	return topology.RotationExpansion(l, t, exps)
}

// --- collectives ----------------------------------------------------------------

// BroadcastTree is a spanning tree used by structured broadcast.
type BroadcastTree = collective.Tree

// NewBroadcastTree builds a BFS spanning tree of the network rooted at
// root; its height equals the diameter by vertex symmetry.
func NewBroadcastTree(nw *Network, root Node) (*BroadcastTree, error) {
	return collective.BFSTree(nw.Graph(), root)
}

// MNBPipelinedBound bounds multinode-broadcast time by pipelining
// single-node broadcasts over the tree.
func MNBPipelinedBound(t *BroadcastTree, model PortModel, inDegree int) int64 {
	return collective.MNBPipelinedBound(t, model, inDegree)
}

// --- fault tolerance --------------------------------------------------------------

// Fault vocabulary re-exported from the fault-injection engine.
type (
	FaultLink    = fault.Link
	FaultSet     = fault.Set
	FaultProfile = fault.Profile
	FaultTrial   = fault.Trial
)

// NewFaultSet builds a fault set from directed links.
func NewFaultSet(links ...FaultLink) FaultSet { return fault.NewSet(links...) }

// FaultBFS measures reachability and distances from src with the failed
// links removed.
func FaultBFS(nw *Network, faults FaultSet, src Node) (*FaultProfile, error) {
	return fault.BFS(nw.Graph(), faults, src)
}

// RandomFaultTrials injects random link failures repeatedly and reports
// connectivity and distance inflation.
func RandomFaultTrials(nw *Network, faults, runs int, seed uint64) (*FaultTrial, error) {
	return fault.RandomTrials(nw.Graph(), faults, runs, seed)
}

// MirrorFaultsUndirected adds the reverse direction of each failed link (a
// severed physical wire in an undirected network).
func MirrorFaultsUndirected(nw *Network, faults FaultSet) (FaultSet, error) {
	return fault.MirrorUndirected(nw.Graph(), faults)
}

// --- throughput and average-distance analysis --------------------------------------

// PinLimitedThroughput returns the §4.2 throughput bound P / D̄ for a
// per-node pin budget P and average distance D̄.
func PinLimitedThroughput(pins, avgDist float64) (float64, error) {
	return metrics.PinLimitedThroughput(pins, avgDist)
}

// DirectedDiameterLowerBound is the directed-graph analogue of D_L.
func DirectedDiameterLowerBound(n float64, d int) (float64, error) {
	return metrics.DLDirected(n, d)
}

// AvgDistanceRow is one row of the Theorem 4.7 table.
type AvgDistanceRow = figures.AvgDistanceRow

// AvgDistanceTable measures exact average distances (Theorem 4.7) for every
// family at (l,n) plus the same-k star graph.
func AvgDistanceTable(l, n int) ([]AvgDistanceRow, error) { return figures.AvgDistanceTable(l, n) }

// RenderAvgDistanceTable renders the Theorem 4.7 table as text.
func RenderAvgDistanceTable(rows []AvgDistanceRow) string {
	return figures.RenderAvgDistanceTable(rows)
}

// RecursiveDilation re-exported: worst inner-word length of a recursive MS.
func RecursiveDilation(nw *Network) (int, error) { return nw.RecursiveDilation() }

// TreeMNBResult reports a translated-tree multinode broadcast simulation.
type TreeMNBResult = collective.TreeMNBResult

// SimulateTreeMNB runs the structured MNB of §5: every node's message flows
// down its own translate of a BFS spanning tree. Each message crosses
// exactly N-1 links, and under the single-port model the completion time
// meets the N-1 lower bound on vertex-symmetric networks.
func SimulateTreeMNB(nw *Network, model PortModel, maxSteps int) (*TreeMNBResult, error) {
	return collective.SimulateTreeMNB(nw.Graph(), model, maxSteps)
}

// NewFaultRoutedTopology adapts a faulted network to the simulator with
// exact shortest-path routing around the failures.
func NewFaultRoutedTopology(nw *Network, faults FaultSet) (SimTopology, error) {
	return fault.NewRoutedTopology(nw.Graph(), faults)
}

// ScatterTime computes single-node scatter (one-to-all personalized)
// completion time along a spanning tree with farthest-first scheduling;
// gather is its time reversal with identical cost on undirected networks.
func ScatterTime(t *BroadcastTree, model PortModel) (int, error) {
	return collective.ScatterTime(t, model)
}

// ScatterLowerBound returns max(⌈(N-1)/ports⌉, tree height).
func ScatterLowerBound(t *BroadcastTree, model PortModel, outDegree int) int64 {
	return collective.ScatterLowerBound(t, model, outDegree)
}

// GrowthRow is one row of the exact-diameter growth table.
type GrowthRow = figures.GrowthRow

// DiameterGrowthTable measures exact diameters of families across sizes.
func DiameterGrowthTable(maxK int, fams []Family) ([]GrowthRow, error) {
	return figures.DiameterGrowthTable(maxK, fams)
}

// RenderGrowthTable renders the growth table as text.
func RenderGrowthTable(rows []GrowthRow) string { return figures.RenderGrowthTable(rows) }

// SJTCycle returns the constructive Steinhaus–Johnson–Trotter Hamiltonian
// cycle of the k-dimensional bubble-sort graph (k! adjacent transpositions);
// through EmulateBubbleOnStar it walks star-based networks as a dilation-3
// ring.
func SJTCycle(k int) ([]Move, error) { return embed.SJTCycle(k) }

// EmulateBubbleOnStar converts a bubble-sort route or cycle to star-graph
// moves with slowdown at most 3.
func EmulateBubbleOnStar(moves []Move) ([]Move, error) { return embed.EmulateBubbleOnStar(moves) }

// HamiltonianCycle searches a small Cayley graph for a Hamiltonian cycle by
// bounded backtracking (demonstrating ring embeddings on 24-node instances).
func HamiltonianCycle(nw *Network, maxNodes, maxSteps int64) ([]int, error) {
	return embed.HamiltonianCycle(nw.Graph(), maxNodes, maxSteps)
}
