package scg_test

import (
	"fmt"
	"log"

	scg "repro"
)

// Building a macro-star network and routing between two nodes by solving
// the Balls-to-Boxes game.
func Example() {
	nw, err := scg.NewMacroStar(3, 2)
	if err != nil {
		log.Fatal(err)
	}
	src, _ := scg.ParseNode("5342671")
	dst := scg.IdentityNode(nw.K())
	moves, err := nw.Route(src, dst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(nw.Name(), "routes", src, "->", dst, "in", len(moves), "hops")
	// Output:
	// MS(3,2) routes 5342671 -> 1234567 in 15 hops
}

// Solving a ball-arrangement game directly: the Figure 2 instance with
// insertion moves and rotating boxes.
func ExampleSolve() {
	rules, err := scg.NewGame(3, 2, scg.InsertionBalls, scg.RotateBoxesAll)
	if err != nil {
		log.Fatal(err)
	}
	u, _ := scg.ParseNode("5342671")
	moves, err := scg.Solve(rules, u)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(scg.MoveNames(moves))
	// Output:
	// [I3 R1 I3 R1 I3 R2 I2]
}

// Exact measurement of a network by exhaustive BFS.
func ExampleNetwork_measure() {
	nw, err := scg.NewCompleteRotationStar(3, 2)
	if err != nil {
		log.Fatal(err)
	}
	d, err := nw.Graph().Diameter()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: N=%d degree=%d exact diameter=%d\n", nw.Name(), nw.Nodes(), nw.Degree(), d)
	// Output:
	// complete-RS(3,2): N=5040 degree=4 exact diameter=15
}

// The universal diameter lower bound of equation 2 and the alpha ratio.
func ExampleAlphaRatio() {
	alpha, err := scg.AlphaRatio(13, 5040, 4) // MS(3,2): exact diameter 13
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alpha = %.3f\n", alpha)
	// Output:
	// alpha = 1.824
}

// Rendering a configuration as the paper's figures draw it.
func ExampleFormatBoxes() {
	rules, _ := scg.NewGame(3, 2, scg.TranspositionBalls, scg.SwapBoxes)
	u, _ := scg.ParseNode("5342671")
	fmt.Println(scg.FormatBoxes(rules, u))
	// Output:
	// 5 [34][26][71]
}

// The star -> IS embedding of §3.3.3.
func ExampleMeasureStarIntoIS() {
	rep, err := scg.MeasureStarIntoIS(6, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dilation %d congestion %d\n", rep.Dilation, rep.Congestion)
	// Output:
	// dilation 2 congestion 1
}
