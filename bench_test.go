package scg

// Benchmark harness: one benchmark per paper artifact (Figures 1–6, Table 1,
// Theorems 4.1–4.9) plus the ablations called out in DESIGN.md. Besides
// ns/op, benchmarks report the paper-relevant quantities (solution lengths,
// diameters, completion steps) as custom metrics so `go test -bench` output
// doubles as the experiment log.

import (
	"fmt"
	"testing"

	"repro/internal/bag"
	"repro/internal/perm"
	"repro/internal/topology"
)

// --- Figures 1-3: game instances ------------------------------------------------

// BenchmarkFigure1RotationGame solves the Figure 1 game: l = 3 boxes of
// n = 2 balls, balls moved by transpositions, boxes by rotations, box colors
// 2,3,1 (offset 1).
func BenchmarkFigure1RotationGame(b *testing.B) {
	rules, err := NewGame(3, 2, TranspositionBalls, RotateBoxesAll)
	if err != nil {
		b.Fatal(err)
	}
	u, err := ParseNode("7254361")
	if err != nil {
		b.Fatal(err)
	}
	var moves []Move
	for i := 0; i < b.N; i++ {
		moves, err = SolveWithOffset(rules, u, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(moves)), "moves")
}

// BenchmarkFigure2InsertionGame solves the Figure 2 instance (source
// 5342671) with insertion moves and the Figure 1 color assignment.
func BenchmarkFigure2InsertionGame(b *testing.B) {
	rules, err := NewGame(3, 2, InsertionBalls, RotateBoxesAll)
	if err != nil {
		b.Fatal(err)
	}
	u, err := ParseNode("5342671")
	if err != nil {
		b.Fatal(err)
	}
	var moves []Move
	for i := 0; i < b.N; i++ {
		moves, err = SolveWithOffset(rules, u, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(moves)), "moves")
}

// BenchmarkFigure3ColorOptimizedGame solves the same instance as Figure 2
// searching all color assignments — the Figure 3 improvement.
func BenchmarkFigure3ColorOptimizedGame(b *testing.B) {
	rules, err := NewGame(3, 2, InsertionBalls, RotateBoxesAll)
	if err != nil {
		b.Fatal(err)
	}
	u, err := ParseNode("5342671")
	if err != nil {
		b.Fatal(err)
	}
	var moves []Move
	for i := 0; i < b.N; i++ {
		moves, err = Solve(rules, u)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(moves)), "moves")
}

// --- Figures 4-6 and Table 1 ------------------------------------------------------

func BenchmarkFigure4Degrees(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Fig4Degrees(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5Diameters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Fig5Diameters(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6Cost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Fig6Cost(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Ratios regenerates Table 1 with exact BFS measurements at
// k <= 7.
func BenchmarkTable1Ratios(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Table1(7); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Theorems ------------------------------------------------------------------

// BenchmarkTheorem41CompleteRSDiameter measures the exact diameter of
// complete-RS(3,2) against the Theorem 4.1 bound ⌊2.5k⌋ + l - 4.
func BenchmarkTheorem41CompleteRSDiameter(b *testing.B) {
	nw, err := NewCompleteRotationStar(3, 2)
	if err != nil {
		b.Fatal(err)
	}
	var d int
	for i := 0; i < b.N; i++ {
		d, err = nw.Graph().Diameter()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(d), "diameter")
	if bound, ok := topology.PaperDiameterBound(topology.CompleteRS, 3, 2); ok {
		b.ReportMetric(float64(bound), "paper-bound")
	}
}

// BenchmarkTheorem42MSDiameter measures MS(3,2) against the Theorem 4.2
// bound.
func BenchmarkTheorem42MSDiameter(b *testing.B) {
	nw, err := NewMacroStar(3, 2)
	if err != nil {
		b.Fatal(err)
	}
	var d int
	for i := 0; i < b.N; i++ {
		d, err = nw.Graph().Diameter()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(d), "diameter")
	if bound, ok := topology.PaperDiameterBound(topology.MS, 3, 2); ok {
		b.ReportMetric(float64(bound), "paper-bound")
	}
}

// BenchmarkTheorem43RotatorDiameters measures the insertion-based networks
// of Theorem 4.3 (MR, MIS, complete-RR, complete-RIS at (3,2)).
func BenchmarkTheorem43RotatorDiameters(b *testing.B) {
	fams := []Family{MRFamily, MISFamily, CompleteRRFamily, CompleteRISFamily}
	var total int
	for i := 0; i < b.N; i++ {
		total = 0
		for _, fam := range fams {
			nw, err := New(fam, 3, 2)
			if err != nil {
				b.Fatal(err)
			}
			d, err := nw.Graph().Diameter()
			if err != nil {
				b.Fatal(err)
			}
			total += d
		}
	}
	b.ReportMetric(float64(total)/float64(len(fams)), "avg-diameter")
}

// BenchmarkTheorem45AlphaRatio reports the measured α of MS(3,2): Theorem
// 4.5 says suitably constructed instances approach 1.25.
func BenchmarkTheorem45AlphaRatio(b *testing.B) {
	nw, err := NewMacroStar(3, 2)
	if err != nil {
		b.Fatal(err)
	}
	var a float64
	for i := 0; i < b.N; i++ {
		d, err := nw.Graph().Diameter()
		if err != nil {
			b.Fatal(err)
		}
		a, err = AlphaRatio(d, float64(nw.Nodes()), nw.Degree())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(a, "alpha")
}

// BenchmarkTheorem47AverageDistance reports the exact average distance and
// its ratio to the Moore packing bound (Theorem 4.7).
func BenchmarkTheorem47AverageDistance(b *testing.B) {
	nw, err := NewMacroStar(3, 2)
	if err != nil {
		b.Fatal(err)
	}
	var avg float64
	for i := 0; i < b.N; i++ {
		avg, err = nw.Graph().AverageDistance()
		if err != nil {
			b.Fatal(err)
		}
	}
	lb, err := AvgDistanceLowerBound(float64(nw.Nodes()), nw.Degree())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(avg, "avg-distance")
	b.ReportMetric(avg/lb, "alpha-avg")
}

// BenchmarkTheorem48InterclusterMetrics measures the MCMP intercluster
// profile of MS(3,2) (Theorem 4.8).
func BenchmarkTheorem48InterclusterMetrics(b *testing.B) {
	nw, err := NewMacroStar(3, 2)
	if err != nil {
		b.Fatal(err)
	}
	var prof *MCMPProfile
	for i := 0; i < b.N; i++ {
		prof, err = MeasureMCMP(nw, 1.0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(prof.InterclusterDiameter), "inter-diameter")
	b.ReportMetric(prof.AvgInterclusterDistance, "inter-avg")
}

// BenchmarkTheorem49BisectionBounds computes the Theorem 4.9 bisection
// bandwidth lower bound for MS(3,2) and the hypercube reference value.
func BenchmarkTheorem49BisectionBounds(b *testing.B) {
	nw, err := NewMacroStar(3, 2)
	if err != nil {
		b.Fatal(err)
	}
	var bb float64
	for i := 0; i < b.N; i++ {
		prof, err := MeasureMCMP(nw, 1.0)
		if err != nil {
			b.Fatal(err)
		}
		bb, err = BisectionLowerBound(1.0, float64(nw.Nodes()), prof.AvgInterclusterDistance)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(bb, "bb-lower-bound")
	hyp, err := NewHypercube(13)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(hyp.BisectionLinks)/float64(hyp.Degree), "hypercube-bb")
}

// --- communication tasks (§1, §5) -----------------------------------------------

func benchBroadcast(b *testing.B, build func() (SimTopology, error), model PortModel) {
	topo, err := build()
	if err != nil {
		b.Fatal(err)
	}
	var res *SimResult
	for i := 0; i < b.N; i++ {
		res, err = RunBroadcast(topo, model, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Steps), "steps")
}

func BenchmarkMNBAllPortMS22(b *testing.B) {
	benchBroadcast(b, func() (SimTopology, error) {
		nw, err := NewMacroStar(2, 2)
		if err != nil {
			return nil, err
		}
		return NewSimNetwork(nw)
	}, AllPort)
}

func BenchmarkMNBSinglePortMS22(b *testing.B) {
	benchBroadcast(b, func() (SimTopology, error) {
		nw, err := NewMacroStar(2, 2)
		if err != nil {
			return nil, err
		}
		return NewSimNetwork(nw)
	}, SinglePort)
}

func BenchmarkMNBAllPortStar5(b *testing.B) {
	benchBroadcast(b, func() (SimTopology, error) {
		nw, err := NewStarGraph(5)
		if err != nil {
			return nil, err
		}
		return NewSimNetwork(nw)
	}, AllPort)
}

func BenchmarkMNBAllPortHypercube7(b *testing.B) {
	benchBroadcast(b, func() (SimTopology, error) { return NewSimHypercube(7) }, AllPort)
}

func benchTE(b *testing.B, build func() (SimTopology, error), model PortModel) {
	topo, err := build()
	if err != nil {
		b.Fatal(err)
	}
	pkts := TotalExchange(topo.NumNodes())
	var res *SimResult
	for i := 0; i < b.N; i++ {
		res, err = RunUnicast(topo, pkts, model, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Steps), "steps")
	b.ReportMetric(float64(res.MaxLinkLoad), "max-link-load")
}

func BenchmarkTotalExchangeMS22(b *testing.B) {
	benchTE(b, func() (SimTopology, error) {
		nw, err := NewMacroStar(2, 2)
		if err != nil {
			return nil, err
		}
		return NewSimNetwork(nw)
	}, AllPort)
}

func BenchmarkTotalExchangeHypercube7(b *testing.B) {
	benchTE(b, func() (SimTopology, error) { return NewSimHypercube(7) }, AllPort)
}

func BenchmarkRandomRoutingCompleteRS32(b *testing.B) {
	nw, err := NewCompleteRotationStar(3, 2)
	if err != nil {
		b.Fatal(err)
	}
	topo, err := NewSimNetwork(nw)
	if err != nil {
		b.Fatal(err)
	}
	pkts := RandomRouting(topo.NumNodes(), 5040, 11)
	var res *SimResult
	for i := 0; i < b.N; i++ {
		res, err = RunUnicast(topo, pkts, AllPort, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Steps), "steps")
	b.ReportMetric(float64(res.MaxLinkLoad)/res.AvgLinkLoad, "load-imbalance")
}

// --- observability overhead -------------------------------------------------------

func benchUnicastTraced(b *testing.B, newRec func() Recorder) {
	nw, err := NewMacroStar(2, 2)
	if err != nil {
		b.Fatal(err)
	}
	topo, err := NewSimNetwork(nw)
	if err != nil {
		b.Fatal(err)
	}
	pkts := RandomRouting(topo.NumNodes(), 2000, 3)
	var res *SimResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = RunUnicastTraced(topo, pkts, AllPort, 0, newRec())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Steps), "steps")
	b.ReportMetric(res.Latency.P99, "latency-p99")
}

// BenchmarkRunUnicastNoop measures the disabled-recorder fast path: a nil
// Recorder must cost the same as the plain engine (compare with
// BenchmarkRunUnicastTraced for the per-step tracing overhead).
func BenchmarkRunUnicastNoop(b *testing.B) {
	benchUnicastTraced(b, func() Recorder { return nil })
}

// BenchmarkRunUnicastTraced runs the same workload with a full per-step
// Trace attached (stats-every 1: step samples, events, load Gini per step).
func BenchmarkRunUnicastTraced(b *testing.B) {
	benchUnicastTraced(b, func() Recorder { return NewTrace(1) })
}

// --- routing throughput -----------------------------------------------------------

// BenchmarkRoutingSolvers measures raw routing (game-solving) speed on a
// 13-symbol instance (N = 13! ≈ 6.2·10⁹ nodes — far beyond enumeration,
// demonstrating that routing never needs the explicit graph).
func BenchmarkRoutingSolvers(b *testing.B) {
	cases := []struct {
		name string
		mk   func() (*Network, error)
	}{
		{"MS(4,3)", func() (*Network, error) { return NewMacroStar(4, 3) }},
		{"complete-RS(4,3)", func() (*Network, error) { return NewCompleteRotationStar(4, 3) }},
		{"MR(4,3)", func() (*Network, error) { return NewMacroRotator(4, 3) }},
		{"complete-RIS(4,3)", func() (*Network, error) { return NewCompleteRotationIS(4, 3) }},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			nw, err := c.mk()
			if err != nil {
				b.Fatal(err)
			}
			rng := perm.NewRNG(7)
			dst := IdentityNode(nw.K())
			total := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src := perm.Random(nw.K(), rng)
				moves, err := nw.Route(src, dst)
				if err != nil {
					b.Fatal(err)
				}
				total += len(moves)
			}
			b.ReportMetric(float64(total)/float64(b.N), "avg-path-len")
		})
	}
}

// --- ablations (DESIGN.md §5) ------------------------------------------------------

// BenchmarkAblationSuperMoves compares swap vs rotation-pair vs
// complete-rotation box moves with the same nucleus on identical random
// instances (the §2.2 design question).
func BenchmarkAblationSuperMoves(b *testing.B) {
	styles := []struct {
		name  string
		super bag.SuperStyle
	}{
		{"swap", SwapBoxes},
		{"rot-pair", RotateBoxesPair},
		{"rot-complete", RotateBoxesAll},
	}
	for _, st := range styles {
		b.Run(st.name, func(b *testing.B) {
			rules, err := NewGame(4, 3, TranspositionBalls, st.super)
			if err != nil {
				b.Fatal(err)
			}
			rng := perm.NewRNG(3)
			total := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				u := perm.Random(13, rng)
				moves, err := Solve(rules, u)
				if err != nil {
					b.Fatal(err)
				}
				total += len(moves)
			}
			b.ReportMetric(float64(total)/float64(b.N), "avg-moves")
		})
	}
}

// BenchmarkAblationNucleusMoves compares transposition vs insertion ball
// moves (the §2.3 improvement: insertion play avoids most color-0 waste).
func BenchmarkAblationNucleusMoves(b *testing.B) {
	styles := []struct {
		name    string
		nucleus bag.NucleusStyle
	}{
		{"transposition", TranspositionBalls},
		{"insertion", InsertionBalls},
	}
	for _, st := range styles {
		b.Run(st.name, func(b *testing.B) {
			rules, err := NewGame(4, 3, st.nucleus, SwapBoxes)
			if err != nil {
				b.Fatal(err)
			}
			rng := perm.NewRNG(5)
			total := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				u := perm.Random(13, rng)
				moves, err := Solve(rules, u)
				if err != nil {
					b.Fatal(err)
				}
				total += len(moves)
			}
			b.ReportMetric(float64(total)/float64(b.N), "avg-moves")
		})
	}
}

// BenchmarkAblationColorAssignment compares fixed color offset 0 with the
// best-of-l search (the Figure 2 vs Figure 3 freedom).
func BenchmarkAblationColorAssignment(b *testing.B) {
	rules, err := NewGame(4, 3, InsertionBalls, RotateBoxesAll)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("fixed-offset", func(b *testing.B) {
		rng := perm.NewRNG(9)
		total := 0
		for i := 0; i < b.N; i++ {
			u := perm.Random(13, rng)
			moves, err := SolveWithOffset(rules, u, 0)
			if err != nil {
				b.Fatal(err)
			}
			total += len(moves)
		}
		b.ReportMetric(float64(total)/float64(b.N), "avg-moves")
	})
	b.Run("best-offset", func(b *testing.B) {
		rng := perm.NewRNG(9)
		total := 0
		for i := 0; i < b.N; i++ {
			u := perm.Random(13, rng)
			moves, err := Solve(rules, u)
			if err != nil {
				b.Fatal(err)
			}
			total += len(moves)
		}
		b.ReportMetric(float64(total)/float64(b.N), "avg-moves")
	})
}

// BenchmarkAblationBalance evaluates Theorem 4.4: degree across (l,n)
// splits of k-1 = 12 — balanced l = Θ(n) minimizes it.
func BenchmarkAblationBalance(b *testing.B) {
	splits := []struct{ l, n int }{{2, 6}, {3, 4}, {4, 3}, {6, 2}}
	var degrees []float64
	for i := 0; i < b.N; i++ {
		degrees = degrees[:0]
		for _, s := range splits {
			d, err := DegreeFormula(MSFamily, s.l, s.n)
			if err != nil {
				b.Fatal(err)
			}
			degrees = append(degrees, float64(d))
		}
	}
	for i, s := range splits {
		b.ReportMetric(degrees[i], fmt.Sprintf("deg-%dx%d", s.l, s.n))
	}
}

// BenchmarkAblationRankedBFS compares the flat-array BFS (rank-indexed)
// against a hash-map frontier BFS on MS(3,2) — the data-structure choice
// that makes exhaustive measurement feasible.
func BenchmarkAblationRankedBFS(b *testing.B) {
	nw, err := NewMacroStar(3, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("rank-array", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := nw.Graph().Diameter(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hash-map", func(b *testing.B) {
		gens := nw.Graph().GeneratorSet().Perms()
		for i := 0; i < b.N; i++ {
			dist := map[string]int{IdentityNode(7).String(): 0}
			queue := []Node{IdentityNode(7)}
			maxD := 0
			for head := 0; head < len(queue); head++ {
				u := queue[head]
				d := dist[u.String()]
				for _, g := range gens {
					v := u.Compose(g)
					if _, seen := dist[v.String()]; !seen {
						dist[v.String()] = d + 1
						if d+1 > maxD {
							maxD = d + 1
						}
						queue = append(queue, v)
					}
				}
			}
			if maxD != 13 {
				b.Fatalf("hash-map BFS diameter %d", maxD)
			}
		}
	})
}
