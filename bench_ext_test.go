package scg

// Benchmarks for the extension modules: the Theorem 4.7 average-distance
// table, structured-vs-flood MNB, fault-tolerance trials, and the §3.3.4
// variant ablations.

import (
	"fmt"
	"testing"

	"repro/internal/perm"
)

// BenchmarkTheorem47AvgDistanceTable regenerates the average-distance /
// Moore-bound table at (3,2) — the measured side of Theorem 4.7.
func BenchmarkTheorem47AvgDistanceTable(b *testing.B) {
	var rows []AvgDistanceRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = AvgDistanceTable(3, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	worst := 0.0
	for _, r := range rows {
		if r.Ratio > worst {
			worst = r.Ratio
		}
	}
	b.ReportMetric(worst, "worst-alpha-avg")
}

// BenchmarkMNBTreeVsFlood compares the pipelined spanning-tree MNB bound
// with the flooding simulator's measured completion.
func BenchmarkMNBTreeVsFlood(b *testing.B) {
	nw, err := NewMacroStar(2, 2)
	if err != nil {
		b.Fatal(err)
	}
	topo, err := NewSimNetwork(nw)
	if err != nil {
		b.Fatal(err)
	}
	var bound int64
	var flood int
	for i := 0; i < b.N; i++ {
		tree, err := NewBroadcastTree(nw, IdentityNode(5))
		if err != nil {
			b.Fatal(err)
		}
		bound = MNBPipelinedBound(tree, AllPort, nw.Degree())
		res, err := RunBroadcast(topo, AllPort, 0)
		if err != nil {
			b.Fatal(err)
		}
		flood = res.Steps
	}
	b.ReportMetric(float64(bound), "tree-bound")
	b.ReportMetric(float64(flood), "flood-steps")
}

// BenchmarkFaultTolerance runs the random-failure trial battery on MS(2,2).
func BenchmarkFaultTolerance(b *testing.B) {
	nw, err := NewMacroStar(2, 2)
	if err != nil {
		b.Fatal(err)
	}
	var tr *FaultTrial
	for i := 0; i < b.N; i++ {
		tr, err = RandomFaultTrials(nw, 4, 10, 7)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.ConnectedRuns)/float64(tr.Runs), "connected-frac")
	b.ReportMetric(tr.MeanDistInflation, "dist-inflation")
}

// BenchmarkAblationRotationSubset sweeps rotation subsets of complete-RS
// between the RS pair and the full set (§3.3.4): degree rises, exact
// diameter falls.
func BenchmarkAblationRotationSubset(b *testing.B) {
	subsets := [][]int{{1, 4}, {1, 2}, {1, 2, 4}, {1, 2, 3, 4}}
	for _, exps := range subsets {
		b.Run(fmt.Sprintf("R%v", exps), func(b *testing.B) {
			var d, deg int
			for i := 0; i < b.N; i++ {
				nw, err := NewRotationSubsetStar(5, 1, exps)
				if err != nil {
					b.Fatal(err)
				}
				deg = nw.Degree()
				d, err = nw.Graph().Diameter()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(deg), "degree")
			b.ReportMetric(float64(d), "diameter")
		})
	}
}

// BenchmarkAblationRecursiveMS compares flat MS(2,4) with recursive
// MS(2;2,2): the recursive variant trades one unit of degree for longer
// routes.
func BenchmarkAblationRecursiveMS(b *testing.B) {
	type variant struct {
		name string
		mk   func() (*Network, error)
	}
	for _, v := range []variant{
		{"flat-MS(2,4)", func() (*Network, error) { return NewMacroStar(2, 4) }},
		{"recursive-MS(2;2,2)", func() (*Network, error) { return NewRecursiveMS(2, 2, 2) }},
	} {
		b.Run(v.name, func(b *testing.B) {
			nw, err := v.mk()
			if err != nil {
				b.Fatal(err)
			}
			rng := perm.NewRNG(3)
			total := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src := perm.Random(9, rng)
				moves, err := nw.Route(src, IdentityNode(9))
				if err != nil {
					b.Fatal(err)
				}
				total += len(moves)
			}
			b.ReportMetric(float64(nw.Degree()), "degree")
			b.ReportMetric(float64(total)/float64(b.N), "avg-route-len")
		})
	}
}

// BenchmarkSIPQuotient measures the super-index-permutation quotient of
// §4.3: exact diameter and intercluster diameter of SIP(3,2) versus its
// Cayley cover MS(3,2).
func BenchmarkSIPQuotient(b *testing.B) {
	g, err := NewSIP(3, 2, TranspositionBalls, SwapBoxes)
	if err != nil {
		b.Fatal(err)
	}
	var d int
	var prof *IPInterclusterProfile
	for i := 0; i < b.N; i++ {
		d, err = g.Diameter()
		if err != nil {
			b.Fatal(err)
		}
		prof, err = g.MeasureIntercluster()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(d), "sip-diameter")
	b.ReportMetric(float64(prof.InterclusterDiameter), "sip-inter-diameter")
	b.ReportMetric(float64(prof.ClusterSize), "sip-cluster")
}

// BenchmarkTreeMNB measures the structured translated-tree MNB of §5
// against the flooding baseline.
func BenchmarkTreeMNB(b *testing.B) {
	nw, err := NewMacroStar(2, 2)
	if err != nil {
		b.Fatal(err)
	}
	var res *TreeMNBResult
	for i := 0; i < b.N; i++ {
		res, err = SimulateTreeMNB(nw, SinglePort, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Steps), "steps")
	b.ReportMetric(float64(res.TotalHops), "hops")
	b.ReportMetric(res.LoadGini, "gini")
}
