// Command scgctl administers the persistent profile store that scgd
// serves from (-store): it pre-bakes profiles so daemons and fleet
// replicas warm-start, and audits store health.
//
//	scgctl warm -store DIR -sweep MS:8,star:9   # pre-bake a sweep
//	scgctl doctor -store DIR -json              # audit, machine-readable
//	scgctl -version
//
// warm enumerates every instance of the swept families (the same
// enumeration as netprops -sweep), runs the exact BFS profile for each on
// a bounded worker pool, and writes the scgstore/v1 entries. Keys already
// present are skipped, so an interrupted warm is resumable by rerunning
// the same command; -force rebuilds them anyway, and -neighbors also
// persists the precomposed neighbor tables (larger files, instant
// adjacency on load).
//
// doctor reads and checksum-verifies every entry, censuses schema
// revisions and quarantined files, reaps *.scgp.tmp.* partial writes left
// by killed processes, and totals sizes per family. Exit status is 0 only
// for a healthy store, so CI can gate on it; -json emits the full
// scgstore-doctor/v1 report for dashboards.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/pool"
	"repro/internal/store"
	"repro/internal/topology"
	"repro/internal/version"
)

func main() {
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Usage = usage
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String("scgctl"))
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	switch args[0] {
	case "warm":
		fail(runWarm(args[1:]))
	case "doctor":
		fail(runDoctor(args[1:]))
	default:
		fmt.Fprintf(os.Stderr, "scgctl: unknown command %q\n\n", args[0])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: scgctl [-version] <command> [flags]

commands:
  warm    pre-bake exact profiles into a store directory
  doctor  audit store health (exit 0 iff healthy)

run 'scgctl <command> -h' for command flags
`)
}

// runWarm pre-bakes the swept instances into the store. Instances whose
// entries already exist are skipped (resumable); the BFS builds run
// concurrently on a bounded pool.
func runWarm(args []string) error {
	fs := flag.NewFlagSet("scgctl warm", flag.ExitOnError)
	var (
		dir       = fs.String("store", "", "store directory (required)")
		sweep     = fs.String("sweep", "", "comma-separated family:maxK sweep specs, e.g. MS:8,star:9 (required)")
		workers   = fs.Int("workers", 0, "concurrent BFS builds (0 = GOMAXPROCS)")
		neighbors = fs.Bool("neighbors", false, "also persist precomposed neighbor tables (larger entries)")
		force     = fs.Bool("force", false, "rebuild entries that already exist")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" || *sweep == "" {
		fs.Usage()
		return fmt.Errorf("warm needs -store and -sweep")
	}
	ins, err := topology.ParseSweepSpecs(*sweep)
	if err != nil {
		return err
	}
	for _, in := range ins {
		if in.K() > core.MaxExplicitK {
			return fmt.Errorf("warm: %v has k=%d beyond MaxExplicitK=%d (exact profiles are enumerable only up to k=%d)",
				in, in.K(), core.MaxExplicitK, core.MaxExplicitK)
		}
	}
	st, err := store.Open(*dir)
	if err != nil {
		return err
	}

	type outcome struct {
		in      topology.Instance
		skipped bool
		bytes   int64
	}
	results, err := pool.Map(len(ins), *workers, func(i int) (outcome, error) {
		in := ins[i]
		key := store.Key{Family: in.Family.String(), L: in.L, N: in.N}
		if !*force && st.Has(key) {
			return outcome{in: in, skipped: true}, nil
		}
		nw, err := topology.New(in.Family, in.L, in.N)
		if err != nil {
			return outcome{}, fmt.Errorf("warm %v: %w", in, err)
		}
		prof, err := nw.Graph().ExactProfile()
		if err != nil {
			return outcome{}, fmt.Errorf("warm %v: %w", in, err)
		}
		e := &store.Entry{Family: key.Family, L: key.L, N: key.N, K: in.K(), Profile: prof}
		if *neighbors {
			tbl, err := nw.Graph().EnsureNeighborTable(0)
			if err != nil {
				return outcome{}, fmt.Errorf("warm %v: %w", in, err)
			}
			e.Neighbors = tbl
		}
		if err := st.Put(key, e); err != nil {
			return outcome{}, err
		}
		nw.Graph().DropNeighborTable()
		fi, _ := os.Stat(st.EntryPath(key))
		var sz int64
		if fi != nil {
			sz = fi.Size()
		}
		return outcome{in: in, bytes: sz}, nil
	})
	if err != nil {
		return err
	}

	var baked, skipped int
	var bytes int64
	for _, r := range results {
		if r.skipped {
			skipped++
			fmt.Printf("warm %-20s skip (already stored)\n", r.in)
			continue
		}
		baked++
		bytes += r.bytes
		fmt.Printf("warm %-20s baked (%d bytes)\n", r.in, r.bytes)
	}
	fmt.Printf("warm: %d baked, %d skipped, %d bytes written to %s\n", baked, skipped, bytes, *dir)
	return nil
}

// runDoctor audits the store and exits non-zero on an unhealthy one.
func runDoctor(args []string) error {
	fs := flag.NewFlagSet("scgctl doctor", flag.ExitOnError)
	var (
		dir      = fs.String("store", "", "store directory (required)")
		jsonOut  = fs.Bool("json", false, "emit the scgstore-doctor/v1 report as JSON")
		jsonPath = fs.String("o", "", "write the JSON report to this file instead of stdout (implies -json)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		fs.Usage()
		return fmt.Errorf("doctor needs -store")
	}
	rep, err := store.Doctor(*dir)
	if err != nil {
		return err
	}
	if *jsonOut || *jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if *jsonPath != "" {
			if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
				return err
			}
		} else if _, err := os.Stdout.Write(buf); err != nil {
			return err
		}
	} else {
		printDoctor(rep)
	}
	if !rep.Healthy {
		return fmt.Errorf("doctor: store %s is unhealthy (%d problems)", *dir, len(rep.Problems))
	}
	return nil
}

// printDoctor renders the human-readable audit.
func printDoctor(rep *store.DoctorReport) {
	fmt.Printf("store %s: %d entries, %d bytes", rep.Dir, rep.Entries, rep.TotalBytes)
	if rep.WithNeighbor > 0 {
		fmt.Printf(" (%d with neighbor tables)", rep.WithNeighbor)
	}
	fmt.Println()
	fams := make([]string, 0, len(rep.ByFamily))
	for f := range rep.ByFamily {
		fams = append(fams, f)
	}
	sort.Strings(fams)
	for _, f := range fams {
		fmt.Printf("  family %-16s %d entries\n", f, rep.ByFamily[f])
	}
	for rev, n := range rep.BySchemaRev {
		fmt.Printf("  schema rev %-12s %d files\n", rev, n)
	}
	for _, p := range rep.Problems {
		fmt.Printf("  PROBLEM %-8s %s: %s\n", p.Kind, p.Path, p.Detail)
	}
	for _, q := range rep.Quarantined {
		fmt.Printf("  quarantined %s\n", q)
	}
	for _, o := range rep.OrphansRemoved {
		fmt.Printf("  reaped orphan %s\n", o)
	}
	if rep.Healthy {
		fmt.Println("healthy")
	} else {
		fmt.Printf("UNHEALTHY: %d problems\n", len(rep.Problems))
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "scgctl:", err)
		os.Exit(1)
	}
}
