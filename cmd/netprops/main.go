// Command netprops builds a network instance and reports its topological
// properties: degree, size, diameter bounds, exact diameter and average
// distance (BFS, when enumerable), α ratios, and the MCMP intercluster
// profile of §4.3.
//
// Exact measurements run on the parallel BFS engine automatically on
// multi-core machines. -sweep measures every enumerable instance of the
// family up to a dimension cap, with independent instances measured
// concurrently on a bounded worker pool and rows printed in a fixed
// (k, l) order regardless of scheduling.
//
// Examples:
//
//	netprops -family MS -l 3 -n 2 -exact -mcmp
//	netprops -family complete-RIS -l 4 -n 3
//	netprops -family star -k 10 -exact
//	netprops -family MS -sweep 9
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/mcmp"
	"repro/internal/metrics"
	"repro/internal/perm"
	"repro/internal/pool"
	"repro/internal/topology"
	"repro/internal/version"
)

func main() {
	var (
		family      = flag.String("family", "MS", "family: star | rotator | pancake | bubble-sort | transposition | IS | MS | RS | complete-RS | MR | RR | complete-RR | MIS | RIS | complete-RIS")
		l           = flag.Int("l", 3, "number of super-symbols (super Cayley families)")
		n           = flag.Int("n", 2, "super-symbol length (or k-1 for nucleus-only families)")
		k           = flag.Int("k", 0, "dimension for nucleus-only families (overrides -n)")
		exact       = flag.Bool("exact", false, "measure exact diameter and average distance by BFS")
		doMCMP      = flag.Bool("mcmp", false, "measure the MCMP intercluster profile (super Cayley families)")
		w           = flag.Float64("w", 1.0, "per-node off-chip bandwidth for the MCMP model")
		stretch     = flag.Int("stretch", 0, "sample this many pairs and compare solver routes to exact shortest paths")
		dot         = flag.Bool("dot", false, "write the graph in Graphviz DOT format to stdout and exit")
		sweep       = flag.Int("sweep", 0, "measure every enumerable instance of the family with k <= this, concurrently")
		workers     = flag.Int("workers", 0, "worker-pool size for -sweep (0 = GOMAXPROCS)")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String("netprops"))
		return
	}

	fam, err := familyByName(*family)
	fail(err)

	if *sweep > 0 {
		fail(runSweep(fam, *sweep, *workers))
		return
	}

	nn := *n
	if *k > 0 {
		nn = *k - 1
	}
	nw, err := topology.New(fam, *l, nn)
	fail(err)

	if *dot {
		fail(nw.Graph().WriteDOT(os.Stdout, 0))
		return
	}

	fmt.Println(nw)
	fmt.Printf("degree:              %d\n", nw.Degree())
	fmt.Printf("intercluster degree: %d\n", nw.InterclusterDegree())
	fmt.Printf("diameter bound:      %d (this repo's routing algorithm)\n", nw.DiameterUpperBound())
	if pb, ok := topology.PaperDiameterBound(nw.Family(), nw.L(), nw.N()); ok {
		fmt.Printf("paper bound:         %d\n", pb)
	}
	if dl, err := metrics.DL(float64(nw.Nodes()), nw.Degree()); err == nil {
		fmt.Printf("universal D_L(N,d):  %.3f\n", dl)
	}

	if *exact {
		// One BFS yields the whole distance profile: diameter and average
		// distance together.
		prof, err := nw.Graph().ExactProfile()
		fail(err)
		d, avg := prof.Eccentricity, prof.Mean
		fmt.Printf("exact diameter:      %d\n", d)
		fmt.Printf("exact avg distance:  %.4f\n", avg)
		if a, err := metrics.Alpha(d, float64(nw.Nodes()), nw.Degree()); err == nil {
			fmt.Printf("alpha (D/D_L):       %.4f\n", a)
		}
		if lb, err := metrics.AvgDistanceLowerBound(float64(nw.Nodes()), nw.Degree()); err == nil {
			fmt.Printf("alpha-avg:           %.4f\n", avg/lb)
		}
	}

	if *stretch > 0 {
		st, err := nw.Graph().MeasureStretch(*stretch, 1, func(src, dst perm.Perm) (int, error) {
			return nw.RouteLen(src, dst)
		})
		fail(err)
		fmt.Printf("routing stretch:     mean %.3f, max %.3f, optimal %d/%d pairs\n",
			st.MeanStretch, st.MaxStretch, st.Optimal, st.Pairs)
	}

	if *doMCMP {
		prof, err := mcmp.Measure(nw.Graph(), *w)
		fail(err)
		fmt.Printf("cluster size M:      %d\n", prof.ClusterSize)
		fmt.Printf("intercluster diam:   %d\n", prof.InterclusterDiameter)
		fmt.Printf("intercluster avg:    %.4f\n", prof.AvgInterclusterDistance)
		fmt.Printf("off-chip link bw:    %.4f (w=%.2f)\n", prof.LinkBandwidth, *w)
		bb, err := metrics.BisectionLowerBound(*w, float64(nw.Nodes()), prof.AvgInterclusterDistance)
		fail(err)
		fmt.Printf("bisection BB >=      %.1f (Theorem 4.9)\n", bb)
	}
}

// sweepInstances materializes every constructible instance of fam with
// k <= maxK, in the deterministic (k, l) order topology.EnumerateInstances
// defines (shared with scgctl warm, so both tools sweep the same sets).
func sweepInstances(fam topology.Family, maxK int) ([]*topology.Network, error) {
	ins, err := topology.EnumerateInstances(fam, maxK)
	if err != nil {
		return nil, err
	}
	nws := make([]*topology.Network, 0, len(ins))
	for _, in := range ins {
		nw, err := topology.New(in.Family, in.L, in.N)
		if err != nil {
			return nil, err
		}
		nws = append(nws, nw)
	}
	return nws, nil
}

// runSweep measures every enumerable instance of fam with k <= maxK. The
// exact BFS measurements are independent, so they run concurrently on the
// worker pool; results are gathered by index and printed in the fixed
// enumeration order, keeping the output diff-stable.
func runSweep(fam topology.Family, maxK, workers int) error {
	if maxK > core.MaxExplicitK {
		return fmt.Errorf("netprops: -sweep %d exceeds MaxExplicitK=%d", maxK, core.MaxExplicitK)
	}
	nws, err := sweepInstances(fam, maxK)
	if err != nil {
		return err
	}
	if len(nws) == 0 {
		return fmt.Errorf("netprops: no enumerable %v instances with k <= %d", fam, maxK)
	}
	profiles, err := pool.Map(len(nws), workers, func(i int) (*core.BFSResult, error) {
		return nws[i].Graph().ExactProfile()
	})
	if err != nil {
		return err
	}
	fmt.Printf("exact sweep: %v instances with k <= %d\n", fam, maxK)
	fmt.Printf("%-20s %3s %9s %7s %9s %9s\n", "network", "k", "N", "degree", "diameter", "avg dist")
	for i, nw := range nws {
		p := profiles[i]
		fmt.Printf("%-20s %3d %9d %7d %9d %9.4f\n",
			nw.Name(), nw.K(), nw.Nodes(), nw.Degree(), p.Eccentricity, p.Mean)
	}
	return nil
}

func familyByName(name string) (topology.Family, error) {
	f, err := topology.ParseFamily(name)
	if err != nil {
		return 0, fmt.Errorf("unknown family %q", name)
	}
	return f, nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "netprops:", err)
		os.Exit(1)
	}
}
