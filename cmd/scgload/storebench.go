package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/topology"
)

// StoreBenchReport is the committed BENCH_store.json document: the
// cold-build vs store-load comparison that justifies the persistent
// profile store. Each instance is measured twice through the serving
// cache — once against an empty store (BFS + write-back) and once on a
// fresh server against the now-populated store (restart-equivalent) —
// so the two numbers are the real "first request after deploy" and
// "first request after restart" costs.
type StoreBenchReport struct {
	Schema     string `json:"schema"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	Instances []StoreBenchInstance `json:"instances"`
}

// StoreBenchInstance is one (family, l, n) measurement.
type StoreBenchInstance struct {
	Network string `json:"network"`
	Family  string `json:"family"`
	L       int    `json:"l"`
	N       int    `json:"n"`
	K       int    `json:"k"`
	Nodes   int64  `json:"nodes"`
	// ColdBuildMicros is the first-ever profile request: full BFS plus the
	// store write-back.
	ColdBuildMicros float64 `json:"cold_build_us"`
	// StoreLoadMicros is the same request on a fresh server against the
	// populated store: one sequential read, decode, and validate.
	StoreLoadMicros float64 `json:"store_load_us"`
	// Speedup is ColdBuildMicros / StoreLoadMicros.
	Speedup float64 `json:"speedup"`
	// FileBytes is the size of the persisted scgstore/v1 entry.
	FileBytes int64 `json:"file_bytes"`
	Diameter  int   `json:"diameter"`
}

// runStoreBench measures every instance of the sweep spec and writes the
// scg-storebench/v1 report to out ("-" = stdout). ctx is main's root: the
// builds are not deadline-bounded, but honor an interrupt.
func runStoreBench(ctx context.Context, sweep, out string) error {
	ins, err := topology.ParseSweepSpecs(sweep)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "scgload-storebench-*")
	if err != nil {
		return err
	}
	// Best-effort scratch cleanup; a leftover temp dir is harmless.
	defer func() { _ = os.RemoveAll(dir) }()

	rep := &StoreBenchReport{
		Schema:     "scg-storebench/v1",
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, in := range ins {
		m, err := benchInstance(ctx, dir, in)
		if err != nil {
			return fmt.Errorf("storebench %v: %w", in, err)
		}
		rep.Instances = append(rep.Instances, *m)
		fmt.Fprintf(os.Stderr, "storebench %-20s cold %10.0f us  warm %8.0f us  %7.1fx  %d bytes\n",
			m.Network, m.ColdBuildMicros, m.StoreLoadMicros, m.Speedup, m.FileBytes)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(out, enc, 0o644)
}

// benchInstance measures one instance: cold build through a server with an
// empty store slot, then a store load through a brand-new server (the
// restart) against the entry the cold pass persisted.
func benchInstance(ctx context.Context, dir string, in topology.Instance) (*StoreBenchInstance, error) {
	key := server.Key{Family: in.Family, L: in.L, N: in.N}

	// Cold pass: its own server; profile misses the store, runs the BFS,
	// writes back.
	coldStore, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	cold := server.New(server.Config{Store: coldStore, SampleInterval: -1})
	t0 := time.Now()
	prof, err := cold.Cache().Profile(ctx, key)
	coldElapsed := time.Since(t0)
	cold.Close()
	if err != nil {
		return nil, err
	}
	sk := store.Key{Family: in.Family.String(), L: in.L, N: in.N}
	fi, err := os.Stat(coldStore.EntryPath(sk))
	if err != nil {
		return nil, fmt.Errorf("cold pass persisted nothing: %w", err)
	}

	// Warm pass: a fresh server and store handle over the same directory —
	// exactly what a daemon restart sees.
	warmStore, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	warm := server.New(server.Config{Store: warmStore, SampleInterval: -1})
	t1 := time.Now()
	wprof, err := warm.Cache().Profile(ctx, key)
	warmElapsed := time.Since(t1)
	warm.Close()
	if err != nil {
		return nil, err
	}
	if warmStore.Stats().Hits.Load() == 0 {
		return nil, fmt.Errorf("warm pass did not hit the store")
	}
	if wprof.Eccentricity != prof.Eccentricity || wprof.Mean != prof.Mean {
		return nil, fmt.Errorf("store round-trip changed the profile: diameter %d->%d mean %g->%g",
			prof.Eccentricity, wprof.Eccentricity, prof.Mean, wprof.Mean)
	}

	nw, err := topology.New(in.Family, in.L, in.N)
	if err != nil {
		return nil, err
	}
	m := &StoreBenchInstance{
		Network: nw.Name(), Family: in.Family.String(), L: in.L, N: in.N,
		K: in.K(), Nodes: nw.Nodes(),
		ColdBuildMicros: float64(coldElapsed.Microseconds()),
		StoreLoadMicros: float64(warmElapsed.Microseconds()),
		FileBytes:       fi.Size(),
		Diameter:        prof.Eccentricity,
	}
	if m.StoreLoadMicros > 0 {
		m.Speedup = m.ColdBuildMicros / m.StoreLoadMicros
	}
	return m, nil
}
