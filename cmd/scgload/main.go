// Command scgload is a closed-loop load generator for scgd: a fixed worker
// pool issues back-to-back requests against the topology-query service (a
// live daemon via -url, or an in-process server when -url is empty) with a
// weighted endpoint mix, and reports per-endpoint throughput and latency
// percentiles as JSON — the server-side counterpart of cmd/benchreport,
// producing the committed BENCH_server.json baseline.
//
// Examples:
//
//	scgload -family MS -l 2 -n 3 -workers 8 -duration 5s -out BENCH_server.json
//	scgload -url http://localhost:8080 -mix route:80,metrics:20
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/perm"
	"repro/internal/pool"
	"repro/internal/server"
	"repro/internal/topology"
	"repro/internal/version"
)

// Report is the top-level JSON document; the env fields match
// cmd/benchreport's so the two baselines can be compared machine-to-machine.
type Report struct {
	Schema          string         `json:"schema"`
	Target          string         `json:"target"`
	Network         string         `json:"network"`
	Workers         int            `json:"workers"`
	DurationSeconds float64        `json:"duration_seconds"`
	GoVersion       string         `json:"go_version"`
	GOOS            string         `json:"goos"`
	GOARCH          string         `json:"goarch"`
	NumCPU          int            `json:"num_cpu"`
	GOMAXPROCS      int            `json:"gomaxprocs"`
	Endpoints       []EndpointLoad `json:"endpoints"`
	// ServerStats is the daemon's own /statsz snapshot after the run —
	// cache hit/build counts prove what the load actually exercised.
	ServerStats *server.StatsResponse `json:"server_stats,omitempty"`
	// MetricsDelta is the change in every monotone /metricsz sample
	// (counters and histogram buckets) across the measurement window: the
	// server's own accounting of the run, from the same scrape surface a
	// production Prometheus would watch. Absent when /metricsz was
	// unreachable.
	MetricsDelta map[string]float64 `json:"metrics_delta,omitempty"`
}

// EndpointLoad is one endpoint's measured load slice ("total" aggregates).
type EndpointLoad struct {
	Name     string      `json:"name"`
	Requests int64       `json:"requests"`
	Errors   int64       `json:"errors"`
	RPS      float64     `json:"rps"`
	Latency  obs.Summary `json:"latency_us"`
}

// workerStats accumulates one worker's observations, merged after the run.
type workerStats struct {
	requests map[string]int64
	errors   map[string]int64
	lat      map[string]*obs.Histogram
}

func newWorkerStats(endpoints []string) *workerStats {
	ws := &workerStats{
		requests: make(map[string]int64),
		errors:   make(map[string]int64),
		lat:      make(map[string]*obs.Histogram),
	}
	for _, ep := range endpoints {
		ws.lat[ep] = obs.NewHistogram()
	}
	return ws
}

func main() {
	var (
		target      = flag.String("url", "", "scgd base URL (empty = run an in-process server)")
		family      = flag.String("family", "MS", "network family for generated requests")
		l           = flag.Int("l", 2, "super-symbol count")
		n           = flag.Int("n", 3, "super-symbol length")
		workers     = flag.Int("workers", 8, "closed-loop workers (each issues requests back-to-back)")
		duration    = flag.Duration("duration", 5*time.Second, "measurement window")
		mix         = flag.String("mix", "route:70,metrics:20,neighbors:10", "endpoint mix as name:weight pairs")
		seed        = flag.Uint64("seed", 1, "workload RNG seed (worker i uses seed+i)")
		out         = flag.String("out", "-", "JSON report path, or - for stdout")
		storeBench  = flag.Bool("storebench", false, "measure cold-build vs store-load warm start per instance and emit scg-storebench/v1 (uses -sweep, -out)")
		sweepSpec   = flag.String("sweep", "MS:8,star:8", "family:maxK sweep specs for -storebench")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String("scgload"))
		return
	}
	if *storeBench {
		fail(runStoreBench(context.Background(), *sweepSpec, *out))
		return
	}

	fam, err := topology.ParseFamily(*family)
	fail(err)
	nw, err := topology.New(fam, *l, *n)
	fail(err)
	k := nw.K()

	weights, endpoints, err := parseMix(*mix)
	fail(err)

	base := *target
	targetLabel := base
	if base == "" {
		ts := httptest.NewServer(server.New(server.Config{}).Handler())
		defer ts.Close()
		base = ts.URL
		targetLabel = "in-process"
	}
	base = strings.TrimRight(base, "/")

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *workers * 2,
		MaxIdleConnsPerHost: *workers * 2,
	}}

	if *workers < 1 {
		*workers = 1
	}
	before := scrapeMetrics(client, base)
	deadline := time.Now().Add(*duration)
	t0 := time.Now()
	perWorker, err := pool.Map(*workers, *workers, func(i int) (*workerStats, error) {
		ws := newWorkerStats(endpoints)
		rng := perm.NewRNG(*seed + uint64(i))
		for time.Now().Before(deadline) {
			ep := pickEndpoint(weights, endpoints, rng)
			reqURL := buildURL(base, ep, fam, *l, *n, k, rng)
			start := time.Now()
			status, err := issue(client, reqURL)
			elapsed := time.Since(start)
			ws.requests[ep]++
			if err != nil || status >= 400 {
				ws.errors[ep]++
			}
			ws.lat[ep].Observe(elapsed.Microseconds())
		}
		return ws, nil
	})
	fail(err)
	elapsed := time.Since(t0)

	rep := &Report{
		Schema:          "scg-servbench/v1",
		Target:          targetLabel,
		Network:         nw.Name(),
		Workers:         *workers,
		DurationSeconds: elapsed.Seconds(),
		GoVersion:       runtime.Version(),
		GOOS:            runtime.GOOS,
		GOARCH:          runtime.GOARCH,
		NumCPU:          runtime.NumCPU(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
	}
	total := EndpointLoad{Name: "total"}
	totalLat := obs.NewHistogram()
	for _, ep := range endpoints {
		lat := obs.NewHistogram()
		var reqs, errs int64
		for _, ws := range perWorker {
			reqs += ws.requests[ep]
			errs += ws.errors[ep]
			lat.Merge(ws.lat[ep])
		}
		rep.Endpoints = append(rep.Endpoints, EndpointLoad{
			Name:     ep,
			Requests: reqs,
			Errors:   errs,
			RPS:      float64(reqs) / elapsed.Seconds(),
			Latency:  lat.Summary(),
		})
		total.Requests += reqs
		total.Errors += errs
		totalLat.Merge(lat)
	}
	total.RPS = float64(total.Requests) / elapsed.Seconds()
	total.Latency = totalLat.Summary()
	rep.Endpoints = append(rep.Endpoints, total)
	rep.ServerStats = fetchStats(client, base)
	rep.MetricsDelta = metricsDelta(before, scrapeMetrics(client, base))

	enc, err := json.MarshalIndent(rep, "", "  ")
	fail(err)
	enc = append(enc, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(enc)
		fail(err)
		return
	}
	fail(os.WriteFile(*out, enc, 0o644))
	fmt.Printf("wrote %s (%d requests, %.0f req/s, p99 %.0f us)\n",
		*out, total.Requests, total.RPS, total.Latency.P99)
}

// parseMix decodes "route:70,metrics:20,neighbors:10" into cumulative
// weights plus the endpoint order.
func parseMix(s string) (weights []int, endpoints []string, err error) {
	known := map[string]bool{"route": true, "metrics": true, "neighbors": true}
	sum := 0
	for _, part := range strings.Split(s, ",") {
		name, w, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, nil, fmt.Errorf("bad mix entry %q (want name:weight)", part)
		}
		if !known[name] {
			return nil, nil, fmt.Errorf("unknown mix endpoint %q (route, metrics, neighbors)", name)
		}
		v, err := strconv.Atoi(w)
		if err != nil || v <= 0 {
			return nil, nil, fmt.Errorf("bad mix weight %q", w)
		}
		sum += v
		weights = append(weights, sum)
		endpoints = append(endpoints, name)
	}
	if len(endpoints) == 0 {
		return nil, nil, fmt.Errorf("empty mix")
	}
	return weights, endpoints, nil
}

// pickEndpoint samples the weighted mix.
func pickEndpoint(weights []int, endpoints []string, rng *perm.RNG) string {
	total := weights[len(weights)-1]
	x := rng.Intn(total)
	for i, w := range weights {
		if x < w {
			return endpoints[i]
		}
	}
	return endpoints[len(endpoints)-1]
}

// buildURL renders one request of the given kind with fresh random nodes.
func buildURL(base, ep string, fam topology.Family, l, n, k int, rng *perm.RNG) string {
	q := url.Values{}
	q.Set("family", fam.String())
	q.Set("l", strconv.Itoa(l))
	q.Set("n", strconv.Itoa(n))
	switch ep {
	case "route":
		q.Set("src", perm.Random(k, rng).String())
		q.Set("dst", perm.Random(k, rng).String())
		return base + "/v1/route?" + q.Encode()
	case "neighbors":
		q.Set("node", perm.Random(k, rng).String())
		return base + "/v1/neighbors?" + q.Encode()
	default:
		return base + "/v1/metrics?" + q.Encode()
	}
}

// issue performs one request, draining the body so connections are reused.
func issue(client *http.Client, reqURL string) (int, error) {
	resp, err := client.Get(reqURL)
	if err != nil {
		return 0, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	return resp.StatusCode, nil
}

// scrapeMetrics fetches /metricsz and parses the monotone samples (families
// typed counter or histogram) into sample-name -> value. Gauges are skipped:
// a before/after subtraction only means something for values that never go
// down. Returns nil when the endpoint is unreachable (an older daemon).
func scrapeMetrics(client *http.Client, base string) map[string]float64 {
	resp, err := client.Get(base + "/metricsz")
	if err != nil {
		return nil
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil
	}
	monotone := make(map[string]bool)
	out := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) == 4 && (f[3] == "counter" || f[3] == "histogram") {
				monotone[f[2]] = true
			}
			continue
		}
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		name := line[:sp]
		base := name
		if b := strings.IndexByte(base, '{'); b >= 0 {
			base = base[:b]
		}
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if monotone[strings.TrimSuffix(base, suffix)] {
				base = strings.TrimSuffix(base, suffix)
				break
			}
		}
		if !monotone[base] {
			continue
		}
		if v, err := strconv.ParseFloat(line[sp+1:], 64); err == nil {
			out[name] = v
		}
	}
	return out
}

// metricsDelta subtracts two scrapes, keeping samples that moved (or
// appeared) during the window.
func metricsDelta(before, after map[string]float64) map[string]float64 {
	if after == nil {
		return nil
	}
	delta := make(map[string]float64)
	for name, v := range after {
		if d := v - before[name]; d != 0 {
			delta[name] = d
		}
	}
	return delta
}

// fetchStats grabs the server's /statsz snapshot; nil when unreachable.
func fetchStats(client *http.Client, base string) *server.StatsResponse {
	resp, err := client.Get(base + "/statsz")
	if err != nil {
		return nil
	}
	defer func() { _ = resp.Body.Close() }()
	var st server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil
	}
	return &st
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "scgload:", err)
		os.Exit(1)
	}
}
