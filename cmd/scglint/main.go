// Command scglint is the project's static-analysis suite: sixteen custom
// analyzers that machine-check the repository's correctness conventions
// using only the standard library's go/ast, go/parser, go/token, and
// go/types. Six guard sequential conventions (permalias, panicstyle,
// nilrecorder, droppederr, simhygiene, mapdeterminism); five are
// concurrency-aware (goroutinecapture, atomicmix, waitgrouplint,
// boundedspawn, telemetrylabel), enforcing the parallel measurement
// engine's discipline: no shared scratch captured by concurrent closures,
// no mixed atomic/plain access, Add-before-spawn / Done-in-defer, all
// goroutine fan-out routed through the audited internal/pool chokepoint,
// and statically auditable metric cardinality. Five are interprocedural,
// built on a whole-module dataflow layer: hotalloc proves the
// //scglint:hotpath-annotated kernels — and everything they reach through
// the intra-module call graph — free of allocating constructs; ctxflow
// proves context.Context values thread through to every context-accepting
// callee with no undeclared context.Background() roots in the serving
// paths; lockorder proves the module-wide lock-acquisition graph acyclic
// (no AB/BA orderings, no re-acquiring a held lock through any call
// chain) and flags locks held across blocking operations; goroleak proves
// goroutine owners — tickers, cancel funcs, pool runners, samplers, and
// unbuffered sends from spawned goroutines — are released or received on
// every path; and escapegate (under -escapes) holds the hotpath kernels
// to a committed compiler escape budget.
//
// Usage:
//
//	go run ./cmd/scglint ./...
//	go run ./cmd/scglint -json ./...
//	go run ./cmd/scglint -sarif ./... > scglint.sarif
//	go run ./cmd/scglint -diff ./...          # preview suggested fixes
//	go run ./cmd/scglint -fix ./...           # apply suggested fixes
//	go run ./cmd/scglint -only permalias,droppederr ./...
//	go run ./cmd/scglint -list -v
//	go run ./cmd/scglint -callgraph           # dump the hot call graph
//	go run ./cmd/scglint -hotpath-report      # id/position/reason of hot roots
//	go run ./cmd/scglint -facts-cache .scglint-facts ./...   # warm-run cache
//	go run ./cmd/scglint -escapes ./...       # gate kernels on the escape budget
//	go run ./cmd/scglint -escapes -escapes-update ./...   # rewrite the budget
//
// The driver exits 0 when the tree is clean, 1 when findings were reported,
// and 2 when the module could not be loaded or the flags are invalid.
// Several findings carry machine-applyable fixes (loop-variable rebinds,
// clone-before-capture, relocating WaitGroup Add/Done); -fix applies the
// non-overlapping subset and -diff previews the same edits as a unified
// diff without writing. -sarif emits a SARIF 2.1.0 log for CI code-scanning
// annotation. -escapes runs `go build -gcflags=-m`, attributes the heap
// escapes the compiler reports to the //scglint:hotpath kernels, and
// compares the per-kernel counts against results/escape_budget.json in
// both directions — new escapes fail with the compiler's diagnostic line,
// and budgets looser than reality (or naming vanished kernels) fail as
// stale. Findings can be suppressed with an audited directive on the
// flagged statement (trailing, or on its own line above — covering the
// statement's full line span when it wraps):
//
//	//scglint:ignore <analyzer> <reason>
//
// The interprocedural analyzers read four more directives, all with
// mandatory reasons: //scglint:hotpath <why> marks a function a hot-path
// root, //scglint:coldpath <why> cuts call-graph edges into a function (or,
// on a statement, exempts that statement's allocations),
// //scglint:ctxdetach <why> sanctions a deliberate context detach, and
// //scglint:lockheld <why> sanctions a deliberate hold across a blocking
// operation or a lock-order edge (a singleflight barrier, a mutex whose
// critical section is the serialized write itself). Unused or malformed
// directives are themselves findings.
package main

import (
	"os"

	"repro/internal/lint"
)

func main() {
	os.Exit(lint.Main(os.Args[1:], os.Stdout, os.Stderr))
}
