// Command scglint is the project's static-analysis suite: six custom
// analyzers (permalias, panicstyle, nilrecorder, droppederr, simhygiene,
// mapdeterminism) that machine-check the repository's correctness
// conventions using only the standard library's go/ast, go/parser, go/token,
// and go/types.
//
// Usage:
//
//	go run ./cmd/scglint ./...
//	go run ./cmd/scglint -json ./...
//	go run ./cmd/scglint -only permalias,droppederr ./...
//	go run ./cmd/scglint -list -v
//
// The driver exits 0 when the tree is clean, 1 when findings were reported,
// and 2 when the module could not be loaded. Findings can be suppressed with
// an audited directive on (or directly above) the flagged line:
//
//	//scglint:ignore <analyzer> <reason>
//
// Unused or malformed directives are themselves findings.
package main

import (
	"os"

	"repro/internal/lint"
)

func main() {
	os.Exit(lint.Main(os.Args[1:], os.Stdout, os.Stderr))
}
