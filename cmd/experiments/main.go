// Command experiments regenerates every paper artifact in one run and
// writes the results to a directory: Figure 4/5/6 tables and ASCII plots,
// Table 1, the Theorem 4.7 average-distance table, the §4.1 comparison, the
// exact-diameter growth table, MCMP profiles, simulation summaries, and the
// Figures 1–3 game traces. It is the repo's one-shot reproduction driver.
//
// Observability: every major section is phase-timed (timings printed at the
// end), the §5 communication section additionally exports the worked-example
// MS(2,2) MNB trace as NDJSON and CSV, and -cpuprofile/-memprofile write
// pprof profiles of the whole reproduction run.
//
//	experiments -out results -maxk 7
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/bag"
	"repro/internal/collective"
	"repro/internal/figures"
	"repro/internal/gen"
	"repro/internal/mcmp"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/perm"
	"repro/internal/pool"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/version"
)

func main() {
	var (
		out         = flag.String("out", "results", "output directory")
		maxK        = flag.Int("maxk", 7, "largest k for exhaustive measurements")
		traceFile   = flag.String("trace", "", "MNB example trace file (default <out>/mnb_ms22_trace.ndjson)")
		statsEvery  = flag.Int("stats-every", 1, "coalesce per-step trace samples into windows of n steps")
		cpuProfile  = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write a pprof heap profile to this file")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String("experiments"))
		return
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		fail(err)
		fail(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			fail(f.Close())
		}()
	}
	if *traceFile == "" {
		*traceFile = filepath.Join(*out, "mnb_ms22_trace.ndjson")
	}

	timer := obs.NewPhaseTimer()
	write := func(name, content string) {
		path := filepath.Join(*out, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(content))
	}

	// Figures 1-3: game traces.
	timer.Start("fig1-3-games")
	write("fig1-3_games.txt", gameTraces())

	// Figures 4-6 as tables and plots.
	timer.Start("fig4-6")
	f4, err := figures.Fig4Degrees()
	fail(err)
	write("fig4_degrees.txt", figures.RenderSeries("Figure 4: node degree vs log2(N)", f4)+
		"\n"+figures.RenderASCII("Figure 4 (plot)", f4, 0, 0, false))
	f5, err := figures.Fig5Diameters()
	fail(err)
	overlay, err := figures.ExactDiameterOverlay(*maxK)
	fail(err)
	write("fig5_diameters.txt", figures.RenderSeries("Figure 5: diameter vs log2(N)", f5)+
		"\n"+figures.RenderSeries("Figure 5 overlay: exact BFS diameters", overlay)+
		"\n"+figures.RenderASCII("Figure 5 (plot, log y)", f5, 0, 0, true))
	f6, err := figures.Fig6Cost()
	fail(err)
	write("fig6_cost.txt", figures.RenderSeries("Figure 6: degree x diameter vs log2(N)", f6)+
		"\n"+figures.RenderASCII("Figure 6 (plot, log y)", f6, 0, 0, true))

	// Table 1 and companions.
	timer.Start("table1")
	t1, err := figures.Table1(*maxK)
	fail(err)
	write("table1_alpha.txt", figures.RenderTable1(t1))
	avg, err := figures.AvgDistanceTable(3, 2)
	fail(err)
	write("thm47_avgdist.txt", figures.RenderAvgDistanceTable(avg))
	cmp, err := figures.CompareTable(3, 2, *maxK >= 7)
	fail(err)
	write("sec41_compare.txt", figures.RenderCompareTable(cmp))
	growth, err := figures.DiameterGrowthTable(min(*maxK, 9),
		append(topology.AllSuperCayleyFamilies(), topology.Star, topology.Rotator, topology.IS))
	fail(err)
	write("diameter_growth.txt", figures.RenderGrowthTable(growth))

	// MCMP / Theorem 4.8-4.9.
	timer.Start("mcmp")
	write("thm48_49_mcmp.txt", mcmpReport())

	// Communication tasks, with the worked-example MS(2,2) MNB trace.
	timer.Start("communication")
	report, record := commReport(*statsEvery)
	write("sec5_communication.txt", report)
	if record != nil {
		fail(writeTrace(record, *traceFile))
		csvPath := strings.TrimSuffix(*traceFile, filepath.Ext(*traceFile)) + ".csv"
		fail(writeTrace(record, csvPath))
		fmt.Printf("wrote %s and %s (%d step samples)\n", *traceFile, csvPath, len(record.Steps))
	}

	fmt.Println("phase timings:")
	for _, p := range timer.Phases() {
		fmt.Printf("  %-16s %8.3fs\n", p.Name, p.Seconds)
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		fail(err)
		runtime.GC()
		fail(pprof.WriteHeapProfile(f))
		fail(f.Close())
	}
}

// writeTrace writes a run record as NDJSON, or CSV for .csv paths.
func writeTrace(record *obs.RunRecord, path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	// A close error is a write error (buffered data may flush at close).
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	if filepath.Ext(path) == ".csv" {
		return record.WriteCSV(f)
	}
	return record.WriteNDJSON(f)
}

func gameTraces() string {
	var b strings.Builder
	u, _ := perm.Parse("5342671")
	ly := bag.MustLayout(3, 2)
	for _, tc := range []struct {
		title   string
		nucleus bag.NucleusStyle
		offset  int
	}{
		{"Figure 1: transposition balls + rotating boxes (colors 2,3,1)", bag.TranspositionNucleus, 1},
		{"Figure 2: insertion balls, same colors", bag.InsertionNucleus, 1},
		{"Figure 3: insertion balls, best color assignment", bag.InsertionNucleus, -1},
	} {
		rules := bag.Rules{Layout: ly, Nucleus: tc.nucleus, Super: bag.RotCompleteSuper}
		var moves []gen.Generator
		var err error
		if tc.offset >= 0 {
			moves, err = bag.SolveWithOffset(rules, u, tc.offset)
		} else {
			moves, err = bag.Solve(rules, u)
		}
		if err != nil {
			fmt.Fprintf(&b, "%s\n  error: %v\n\n", tc.title, err)
			continue
		}
		fmt.Fprintf(&b, "%s\n", tc.title)
		cfg := u.Clone()
		fmt.Fprintf(&b, "  start  %s\n", bag.FormatBoxes(ly, cfg))
		for _, mv := range moves {
			mv.Apply(cfg)
			fmt.Fprintf(&b, "  %-5s  %s\n", mv.Name(), bag.FormatBoxes(ly, cfg))
		}
		fmt.Fprintf(&b, "  solution (%d moves): %v\n\n", len(moves), bag.MoveNames(moves))
	}
	return b.String()
}

func mcmpReport() string {
	// Each family's intercluster profile is an independent weighted-BFS
	// measurement; run them on the worker pool and render rows in the
	// fixed paper order so the committed artifact stays diff-stable.
	// Families whose profile cannot be measured render as empty rows, the
	// same behaviour as the old skip-on-error loop.
	fams := topology.AllSuperCayleyFamilies()
	rows, err := pool.Map(len(fams), 0, func(i int) (string, error) {
		nw, err := topology.New(fams[i], 3, 2)
		if err != nil {
			return "", nil
		}
		prof, err := mcmp.Measure(nw.Graph(), 1)
		if err != nil {
			return "", nil
		}
		bb, err := metrics.BisectionLowerBound(1, float64(nw.Nodes()), prof.AvgInterclusterDistance)
		if err != nil {
			return "", nil
		}
		return fmt.Sprintf("%-18s %3d %5d %8d %9.3f %10.1f\n",
			nw.Name(), prof.InterclusterDegree, prof.ClusterSize,
			prof.InterclusterDiameter, prof.AvgInterclusterDistance, bb), nil
	})
	var b strings.Builder
	fmt.Fprintf(&b, "MCMP intercluster profiles at (3,2), w = 1 (Theorems 4.8-4.9)\n")
	fmt.Fprintf(&b, "%-18s %3s %5s %8s %9s %10s\n", "network", "d_i", "M", "D_inter", "avg_int", "BB bound")
	if err != nil {
		fmt.Fprintf(&b, "error: %v\n", err)
		return b.String()
	}
	for _, row := range rows {
		b.WriteString(row)
	}
	return b.String()
}

// commReport runs the §5 communication tasks on MS(2,2). The all-port MNB
// run is traced and returned as an exportable run record — the worked
// observability example documented in DESIGN.md.
func commReport(statsEvery int) (string, *obs.RunRecord) {
	var b strings.Builder
	nw, err := topology.NewMS(2, 2)
	if err != nil {
		return err.Error(), nil
	}
	topo, err := sim.NewPermTopology(nw)
	if err != nil {
		return err.Error(), nil
	}
	var record *obs.RunRecord
	fmt.Fprintf(&b, "Communication tasks on %s (N=%d)\n\n", nw.Name(), nw.Nodes())
	for _, model := range []sim.PortModel{sim.AllPort, sim.SinglePort} {
		var rec obs.Recorder
		var trace *obs.Trace
		if model == sim.AllPort {
			trace = obs.NewTrace(statsEvery)
			rec = trace
		}
		flood, err := sim.RunBroadcastTraced(topo, model, 0, rec)
		if err != nil {
			return err.Error(), nil
		}
		tree, err := collective.SimulateTreeMNB(nw.Graph(), model, 0)
		if err != nil {
			return err.Error(), nil
		}
		lb := sim.MNBLowerBound(nw.Nodes(), nw.Degree(), model)
		fmt.Fprintf(&b, "MNB %-11s: lower bound %d, tree %d steps (%d hops, gini %.3f), flood %d steps (%d hops)\n",
			model, lb, tree.Steps, tree.TotalHops, tree.LoadGini, flood.Steps, flood.TotalHops)
		if trace != nil {
			fmt.Fprintf(&b, "MNB all-port latency: %s\n", flood.Latency)
			record = trace.Record(
				map[string]string{
					"network": topo.Name(),
					"nodes":   fmt.Sprint(topo.NumNodes()),
					"degree":  fmt.Sprint(topo.Degree()),
					"task":    "mnb",
					"model":   model.String(),
				},
				map[string]float64{
					"steps":       float64(flood.Steps),
					"delivered":   float64(flood.Delivered),
					"total_hops":  float64(flood.TotalHops),
					"latency_p50": flood.Latency.P50,
					"latency_p95": flood.Latency.P95,
					"latency_p99": flood.Latency.P99,
					"latency_max": float64(flood.Latency.Max),
				},
			)
		}
	}
	te, err := sim.RunUnicast(topo, sim.TotalExchange(nw.Nodes()), sim.AllPort, 0)
	if err != nil {
		return err.Error(), nil
	}
	fmt.Fprintf(&b, "TE all-port: %s\n", te)
	return b.String(), record
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
