// Command simbench runs the packet-level simulator on a chosen network and
// communication task: multinode broadcast (MNB), total exchange (TE), random
// routing, permutation routing, or open-loop traffic, under the single-port
// or all-port model.
//
// Observability: -trace exports a full run record (config, per-step series,
// typed events, latency and link-load histograms, phase timings, summary) as
// NDJSON, or as a per-step CSV when the file name ends in .csv;
// -stats-every coalesces the step series into fixed windows; -cpuprofile
// and -memprofile write pprof profiles of the run.
//
// Examples:
//
//	simbench -family MS -l 2 -n 2 -task mnb -model all
//	simbench -family complete-RS -l 3 -n 2 -task random -count 5040
//	simbench -baseline hypercube -dim 7 -task te -trace te.ndjson
//	simbench -task openloop -rate 0.3 -trace run.ndjson -stats-every 10
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/version"
)

func main() {
	var (
		family   = flag.String("family", "MS", "permutation network family")
		l        = flag.Int("l", 2, "super-symbol count")
		n        = flag.Int("n", 2, "super-symbol length (k-1 for nucleus-only families)")
		baseline = flag.String("baseline", "", "use a baseline instead: hypercube | torus2d | torus3d")
		dim      = flag.Int("dim", 7, "baseline dimension (hypercube d, torus radix)")
		task     = flag.String("task", "mnb", "mnb | te | random | perm | openloop")
		model    = flag.String("model", "all", "all | single")
		count    = flag.Int("count", 1000, "packet count for -task random")
		rate     = flag.Float64("rate", 0.1, "injection rate for -task openloop (packets/node/step)")
		steps    = flag.Int("steps", 300, "horizon for -task openloop")
		seed     = flag.Uint64("seed", 1, "workload seed")
		bufCap   = flag.Int("bufcap", 0, "finite per-link buffer capacity (0 = unbounded; te/random/perm)")

		traceFile   = flag.String("trace", "", "write the run record to this file (NDJSON, or CSV when it ends in .csv)")
		statsEvery  = flag.Int("stats-every", 1, "coalesce per-step trace samples into windows of n steps")
		cpuProfile  = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write a pprof heap profile to this file")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String("simbench"))
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		fail(err)
		fail(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			fail(f.Close())
		}()
	}

	timer := obs.NewPhaseTimer()
	timer.Start("build-topology")
	topo, err := buildTopology(*baseline, *dim, *family, *l, *n)
	fail(err)
	pm := sim.AllPort
	if *model == "single" {
		pm = sim.SinglePort
	}

	var trace *obs.Trace
	var rec obs.Recorder // stays nil (tracing off) unless -trace is given
	if *traceFile != "" {
		trace = obs.NewTrace(*statsEvery)
		rec = trace
	}

	fmt.Printf("network: %s (N=%d, degree %d)\n", topo.Name(), topo.NumNodes(), topo.Degree())
	fmt.Printf("task:    %s, %s model\n", *task, pm)

	config := map[string]string{
		"network": topo.Name(),
		"nodes":   fmt.Sprint(topo.NumNodes()),
		"degree":  fmt.Sprint(topo.Degree()),
		"task":    *task,
		"model":   pm.String(),
		"seed":    fmt.Sprint(*seed),
	}

	timer.Start("workload")
	var pkts []sim.Packet
	switch *task {
	case "te":
		pkts = sim.TotalExchange(topo.NumNodes())
	case "random":
		pkts = sim.RandomRouting(topo.NumNodes(), *count, *seed)
	case "perm":
		pkts = sim.PermutationRouting(topo.NumNodes(), *seed)
	}

	timer.Start("simulate")
	var summary map[string]float64
	switch *task {
	case "mnb":
		res, err := sim.RunBroadcastTraced(topo, pm, 0, rec)
		fail(err)
		fmt.Printf("MNB lower bound: %d steps\n", sim.MNBLowerBound(topo.NumNodes(), topo.Degree(), pm))
		printResult(res)
		summary = resultSummary(res)
	case "te", "random", "perm":
		var res *sim.Result
		if *bufCap > 0 {
			config["bufcap"] = fmt.Sprint(*bufCap)
			res, err = sim.RunUnicastBufferedTraced(topo, pkts, pm, *bufCap, 0, rec)
		} else {
			res, err = sim.RunUnicastTraced(topo, pkts, pm, 0, rec)
		}
		fail(err)
		printResult(res)
		summary = resultSummary(res)
	case "openloop":
		config["rate"] = fmt.Sprint(*rate)
		config["steps"] = fmt.Sprint(*steps)
		res, err := sim.RunOpenLoopTraced(topo, *rate, *steps, pm, *seed, rec)
		fail(err)
		fmt.Printf("result:  %s\n", res)
		summary = openLoopSummary(res)
	default:
		fail(fmt.Errorf("unknown task %q", *task))
	}

	if trace != nil {
		timer.Start("export")
		record := trace.Record(config, summary)
		record.Phases = timer.Phases()
		fail(writeRecord(record, *traceFile))
		fmt.Printf("trace:   wrote %s (%d step samples, %d events)\n",
			*traceFile, len(record.Steps), len(record.Events))
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		fail(err)
		runtime.GC()
		fail(pprof.WriteHeapProfile(f))
		fail(f.Close())
	}
}

func printResult(res *sim.Result) {
	fmt.Printf("result:  %s\n", res)
	if res.AvgLinkLoad > 0 {
		fmt.Printf("balance: max/avg link load = %.3f\n", float64(res.MaxLinkLoad)/res.AvgLinkLoad)
	}
}

func resultSummary(res *sim.Result) map[string]float64 {
	return map[string]float64{
		"steps":         float64(res.Steps),
		"delivered":     float64(res.Delivered),
		"total_hops":    float64(res.TotalHops),
		"max_link_load": float64(res.MaxLinkLoad),
		"avg_link_load": res.AvgLinkLoad,
		"max_queue":     float64(res.MaxQueueLen),
		"load_gini":     res.LoadGini,
		"latency_p50":   res.Latency.P50,
		"latency_p95":   res.Latency.P95,
		"latency_p99":   res.Latency.P99,
		"latency_max":   float64(res.Latency.Max),
		"latency_mean":  res.Latency.Mean,
	}
}

func openLoopSummary(res *sim.OpenLoopResult) map[string]float64 {
	return map[string]float64{
		"offered":      res.Offered,
		"throughput":   res.Throughput,
		"injected":     float64(res.Injected),
		"delivered":    float64(res.Delivered),
		"dropped":      float64(res.Dropped),
		"backlog":      float64(res.Backlog),
		"latency_mean": res.MeanLatency,
		"latency_p50":  res.Latency.P50,
		"latency_p95":  res.Latency.P95,
		"latency_p99":  res.Latency.P99,
		"latency_max":  float64(res.Latency.Max),
	}
}

func writeRecord(record *obs.RunRecord, path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	// A close error is a write error (buffered data may flush at close).
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	if strings.HasSuffix(path, ".csv") {
		return record.WriteCSV(f)
	}
	return record.WriteNDJSON(f)
}

func buildTopology(baseline string, dim int, family string, l, n int) (sim.Topology, error) {
	switch baseline {
	case "hypercube":
		return sim.NewHypercubeTopology(dim)
	case "torus2d":
		return sim.NewTorusTopology(dim, 2)
	case "torus3d":
		return sim.NewTorusTopology(dim, 3)
	case "":
	default:
		return nil, fmt.Errorf("unknown baseline %q", baseline)
	}
	all := append(topology.AllSuperCayleyFamilies(),
		topology.Star, topology.Rotator, topology.IS)
	for _, f := range all {
		if f.String() == family {
			nw, err := topology.New(f, l, n)
			if err != nil {
				return nil, err
			}
			return sim.NewPermTopology(nw)
		}
	}
	return nil, fmt.Errorf("unknown family %q", family)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
}
