// Command simbench runs the packet-level simulator on a chosen network and
// communication task: multinode broadcast (MNB), total exchange (TE), random
// routing, or permutation routing, under the single-port or all-port model.
//
// Examples:
//
//	simbench -family MS -l 2 -n 2 -task mnb -model all
//	simbench -family complete-RS -l 3 -n 2 -task random -count 5040
//	simbench -baseline hypercube -dim 7 -task te
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/sim"
	"repro/internal/topology"
)

func main() {
	var (
		family   = flag.String("family", "MS", "permutation network family")
		l        = flag.Int("l", 2, "super-symbol count")
		n        = flag.Int("n", 2, "super-symbol length (k-1 for nucleus-only families)")
		baseline = flag.String("baseline", "", "use a baseline instead: hypercube | torus2d | torus3d")
		dim      = flag.Int("dim", 7, "baseline dimension (hypercube d, torus radix)")
		task     = flag.String("task", "mnb", "mnb | te | random | perm | openloop")
		model    = flag.String("model", "all", "all | single")
		count    = flag.Int("count", 1000, "packet count for -task random")
		rate     = flag.Float64("rate", 0.1, "injection rate for -task openloop (packets/node/step)")
		steps    = flag.Int("steps", 300, "horizon for -task openloop")
		seed     = flag.Uint64("seed", 1, "workload seed")
	)
	flag.Parse()

	topo, err := buildTopology(*baseline, *dim, *family, *l, *n)
	fail(err)
	pm := sim.AllPort
	if *model == "single" {
		pm = sim.SinglePort
	}

	fmt.Printf("network: %s (N=%d, degree %d)\n", topo.Name(), topo.NumNodes(), topo.Degree())
	fmt.Printf("task:    %s, %s model\n", *task, pm)

	var res *sim.Result
	switch *task {
	case "mnb":
		res, err = sim.RunBroadcast(topo, pm, 0)
		if err == nil {
			fmt.Printf("MNB lower bound: %d steps\n", sim.MNBLowerBound(topo.NumNodes(), topo.Degree(), pm))
		}
	case "te":
		res, err = sim.RunUnicast(topo, sim.TotalExchange(topo.NumNodes()), pm, 0)
	case "random":
		res, err = sim.RunUnicast(topo, sim.RandomRouting(topo.NumNodes(), *count, *seed), pm, 0)
	case "perm":
		res, err = sim.RunUnicast(topo, sim.PermutationRouting(topo.NumNodes(), *seed), pm, 0)
	case "openloop":
		ol, olErr := sim.RunOpenLoop(topo, *rate, *steps, pm, *seed)
		fail(olErr)
		fmt.Printf("result:  %s\n", ol)
		return
	default:
		err = fmt.Errorf("unknown task %q", *task)
	}
	fail(err)
	fmt.Printf("result:  %s\n", res)
	if res.AvgLinkLoad > 0 {
		fmt.Printf("balance: max/avg link load = %.3f\n", float64(res.MaxLinkLoad)/res.AvgLinkLoad)
	}
}

func buildTopology(baseline string, dim int, family string, l, n int) (sim.Topology, error) {
	switch baseline {
	case "hypercube":
		return sim.NewHypercubeTopology(dim)
	case "torus2d":
		return sim.NewTorusTopology(dim, 2)
	case "torus3d":
		return sim.NewTorusTopology(dim, 3)
	case "":
	default:
		return nil, fmt.Errorf("unknown baseline %q", baseline)
	}
	all := append(topology.AllSuperCayleyFamilies(),
		topology.Star, topology.Rotator, topology.IS)
	for _, f := range all {
		if f.String() == family {
			nw, err := topology.New(f, l, n)
			if err != nil {
				return nil, err
			}
			return sim.NewPermTopology(nw)
		}
	}
	return nil, fmt.Errorf("unknown family %q", family)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
}
