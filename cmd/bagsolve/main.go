// Command bagsolve solves a ball-arrangement game instance and prints the
// move sequence — the routing path in the corresponding super Cayley graph.
//
// Examples:
//
//	bagsolve -l 3 -n 2 -state 5342671 -balls insertion -boxes rot-complete
//	bagsolve -l 3 -n 2 -state 5342671 -balls transposition -boxes swap -trace
//	bagsolve -star -state 51432
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bag"
	"repro/internal/gen"
	"repro/internal/perm"
	"repro/internal/version"
)

func main() {
	var (
		l           = flag.Int("l", 3, "number of boxes")
		n           = flag.Int("n", 2, "balls per box")
		state       = flag.String("state", "", "initial configuration, e.g. 5342671 (random if empty)")
		seed        = flag.Uint64("seed", 1, "seed for a random initial configuration")
		balls       = flag.String("balls", "transposition", "ball moves: transposition | insertion")
		boxes       = flag.String("boxes", "swap", "box moves: swap | rot-single | rot-pair | rot-complete | none")
		offset      = flag.Int("offset", -1, "fixed box-color offset (rotation styles); -1 searches all")
		star        = flag.Bool("star", false, "solve as a star-graph game (T2..Tk) instead")
		optimal     = flag.Bool("optimal", false, "find a provably shortest solution (IDA*; exponential in distance)")
		trace       = flag.Bool("trace", false, "print every intermediate configuration")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String("bagsolve"))
		return
	}

	if *star {
		u := mustState(*state, *seed, kFromState(*state, 5))
		moves, err := bag.SolveStar(u)
		fail(err)
		report(u, moves, *trace)
		return
	}

	ly, err := bag.NewLayout(*l, *n)
	fail(err)
	rules := bag.Rules{Layout: ly, Nucleus: nucleusOf(*balls), Super: superOf(*boxes)}
	fail(rules.Validate())
	u := mustState(*state, *seed, ly.K())

	var moves []gen.Generator
	switch {
	case *optimal:
		moves, err = bag.SolveOptimal(rules, u, 0)
	case *offset >= 0:
		moves, err = bag.SolveWithOffset(rules, u, *offset)
	default:
		moves, err = bag.Solve(rules, u)
	}
	fail(err)
	fail(bag.Verify(rules, u, moves))
	fmt.Printf("game:   %s\n", rules)
	report(u, moves, *trace)
	fmt.Printf("bound:  %d (solver worst case)\n", bag.WorstCaseBound(rules))
}

// moveList aliases a generator sequence for readability.
type moveList = []gen.Generator

func nucleusOf(s string) bag.NucleusStyle {
	switch s {
	case "transposition":
		return bag.TranspositionNucleus
	case "insertion":
		return bag.InsertionNucleus
	default:
		fail(fmt.Errorf("unknown ball style %q", s))
		return 0
	}
}

func superOf(s string) bag.SuperStyle {
	switch s {
	case "swap":
		return bag.SwapSuper
	case "rot-single":
		return bag.RotSingleSuper
	case "rot-pair":
		return bag.RotPairSuper
	case "rot-complete":
		return bag.RotCompleteSuper
	case "none":
		return bag.NoSuper
	default:
		fail(fmt.Errorf("unknown box style %q", s))
		return 0
	}
}

func kFromState(state string, fallback int) int {
	if state == "" {
		return fallback
	}
	p, err := perm.Parse(state)
	fail(err)
	return p.K()
}

func mustState(state string, seed uint64, k int) perm.Perm {
	if state == "" {
		return perm.Random(k, perm.NewRNG(seed))
	}
	p, err := perm.Parse(state)
	fail(err)
	if p.K() != k {
		fail(fmt.Errorf("state %q has %d balls, game wants %d", state, p.K(), k))
	}
	return p
}

func report(u perm.Perm, moves moveList, trace bool) {
	fmt.Printf("source: %s\n", u)
	fmt.Printf("target: %s\n", perm.Identity(u.K()))
	fmt.Printf("moves:  %d: %v\n", len(moves), bag.MoveNames(moves))
	if trace {
		cfg := u.Clone()
		fmt.Printf("        %s\n", cfg)
		for _, m := range moves {
			m.Apply(cfg)
			fmt.Printf("  %-4s  %s\n", m.Name(), cfg)
		}
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "bagsolve:", err)
		os.Exit(1)
	}
}
