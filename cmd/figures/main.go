// Command figures regenerates the paper's evaluation artifacts as text
// tables: Figure 4 (degree), Figure 5 (diameter), Figure 6 (degree ×
// diameter), and Table 1 (α ratios), optionally with exact BFS overlays.
//
// Examples:
//
//	figures -artifact all
//	figures -artifact fig5 -exact -maxk 9
//	figures -artifact table1 -maxk 8
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/figures"
	"repro/internal/version"
)

func main() {
	var (
		artifact    = flag.String("artifact", "all", "fig4 | fig5 | fig6 | table1 | avgdist | compare | all")
		exact       = flag.Bool("exact", false, "overlay exact BFS diameters (fig5)")
		plot        = flag.Bool("plot", false, "draw ASCII scatter plots instead of tables (fig4/fig5/fig6)")
		maxK        = flag.Int("maxk", 7, "largest k for exact measurements (BFS over k! states)")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String("figures"))
		return
	}

	run := func(name string) {
		switch name {
		case "fig4":
			s, err := figures.Fig4Degrees()
			fail(err)
			if *plot {
				fmt.Println(figures.RenderASCII("Figure 4: node degree vs log2(N)", s, 0, 0, false))
			} else {
				fmt.Println(figures.RenderSeries("Figure 4: node degree vs log2(N)", s))
			}
		case "fig5":
			s, err := figures.Fig5Diameters()
			fail(err)
			if *plot {
				fmt.Println(figures.RenderASCII("Figure 5: diameter vs log2(N) (routing-bound curves)", s, 0, 0, true))
			} else {
				fmt.Println(figures.RenderSeries("Figure 5: diameter vs log2(N) (routing-bound curves)", s))
			}
			if *exact {
				e, err := figures.ExactDiameterOverlay(*maxK)
				fail(err)
				fmt.Println(figures.RenderSeries("Figure 5 overlay: exact BFS diameters", e))
			}
		case "fig6":
			s, err := figures.Fig6Cost()
			fail(err)
			if *plot {
				fmt.Println(figures.RenderASCII("Figure 6: degree x diameter vs log2(N)", s, 0, 0, true))
			} else {
				fmt.Println(figures.RenderSeries("Figure 6: degree x diameter vs log2(N)", s))
			}
		case "table1":
			rows, err := figures.Table1(*maxK)
			fail(err)
			fmt.Println(figures.RenderTable1(rows))
		case "avgdist":
			rows, err := figures.AvgDistanceTable(3, 2)
			fail(err)
			fmt.Println(figures.RenderAvgDistanceTable(rows))
		case "compare":
			rows, err := figures.CompareTable(3, 2, *maxK >= 7)
			fail(err)
			fmt.Println(figures.RenderCompareTable(rows))
		default:
			fail(fmt.Errorf("unknown artifact %q", name))
		}
	}
	if *artifact == "all" {
		for _, a := range []string{"fig4", "fig5", "fig6", "table1", "avgdist", "compare"} {
			run(a)
		}
		return
	}
	run(*artifact)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}
