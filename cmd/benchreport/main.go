// Command benchreport runs the repository's headline performance
// measurements — the three rank kernels, the BFS engine suite at
// k = 8/9/10 (serial byte-table walk, precomposed neighbor-table build,
// table-resident bitset sweep single-threaded and parallel), stretch
// sampling, the warm /v1/route handler (which must be allocation-free),
// and the scgd telemetry zero-overhead guard (traced vs untraced /v1/route
// must differ by zero allocations per request) — and emits them as JSON so
// each PR can be compared against the committed BENCH_baseline.json and the
// perf trajectory of the exact-measurement engine stays visible.
//
// Entries are emitted in a fixed order (no map iteration feeds the file),
// so two runs on the same machine differ only in the timing fields.
//
// The -hotpath-report flag turns the command into a cross-check instead of
// a benchmark run: it reads the output of `scglint -hotpath-report` and
// asserts that the set of //scglint:hotpath-annotated kernels equals the set
// of kernels these benchmarks actually drive, so the static analysis and the
// measured reality cannot drift apart silently.
//
// The -compare flag turns the command into a regression gate: it reads two
// reports and fails if any benchmark present in both slowed past the ratio
// threshold, gained allocations, or — for route/hot — allocates at all.
// Wall-clock ratios tolerate machine-to-machine noise (-max-ratio, default
// 3x); allocation counts are deterministic and gate exactly.
//
// The -escapes flag is the compile-time sibling of -compare: it runs the
// compiler's escape analysis over the module (optionally named as the one
// positional argument, default ".") and checks every //scglint:hotpath
// kernel against the committed results/escape_budget.json, exactly as
// `scglint -escapes` does. Allocation counts measured at run time and
// escapes proven at compile time gate side by side.
//
// Examples:
//
//	benchreport -out BENCH_baseline.json
//	benchreport -quick -out bench_smoke.json   # CI smoke: k <= 8, 1 round
//	benchreport -compare BENCH_baseline.json bench_smoke.json
//	benchreport -escapes
//	scglint -hotpath-report | benchreport -hotpath-report -
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/lint"
	"repro/internal/perm"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/topology"
	"repro/internal/version"
)

// Report is the top-level JSON document.
type Report struct {
	Schema     string  `json:"schema"`
	GoVersion  string  `json:"go_version"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	NumCPU     int     `json:"num_cpu"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Entries    []Entry `json:"benchmarks"`
}

// Entry is one measured benchmark.
type Entry struct {
	// Name identifies the benchmark, e.g. "bfs-parallel/star-9".
	Name string `json:"name"`
	// K is the permutation dimension the benchmark ran at, 0 if n/a.
	K int `json:"k,omitempty"`
	// Workers is the BFS worker count, 0 for serial/non-BFS entries.
	Workers int `json:"workers,omitempty"`
	// Rounds is how many times the measured operation ran.
	Rounds int `json:"rounds"`
	// NsPerOp is the mean wall time per operation in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is the mean heap allocations per operation; present only
	// for entries that measure allocation behavior (telemetry guard).
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Detail carries a human-oriented annotation (diameter found, pairs
	// sampled, ...).
	Detail string `json:"detail,omitempty"`
}

func main() {
	var (
		out         = flag.String("out", "BENCH_baseline.json", "output path, or - for stdout")
		maxK        = flag.Int("maxk", 10, "largest BFS dimension to measure (8..10)")
		rounds      = flag.Int("rounds", 3, "rounds per BFS benchmark (best-of is not used; the mean is reported)")
		quick       = flag.Bool("quick", false, "CI smoke mode: k <= 8, one round, fewer kernel iterations")
		workers     = flag.Int("workers", 0, "parallel BFS worker count (0 = GOMAXPROCS)")
		hotpaths    = flag.String("hotpath-report", "", "cross-check mode: read `scglint -hotpath-report` output from this file (- for stdin) and assert the annotated kernel set matches the benchmarked set")
		compare     = flag.Bool("compare", false, "regression-gate mode: compare two reports (old.json new.json) instead of measuring")
		escapes     = flag.Bool("escapes", false, "escape-gate mode: run go build -gcflags=-m and check //scglint:hotpath kernels against the committed escape budget")
		maxRatio    = flag.Float64("max-ratio", 3.0, "compare mode: fail when new ns/op exceeds old by this factor")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String("benchreport"))
		return
	}
	if *hotpaths != "" {
		os.Exit(crossCheckHotpaths(*hotpaths))
	}
	if *escapes {
		dir := "."
		if flag.NArg() == 1 {
			dir = flag.Arg(0)
		}
		m, err := lint.Load(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(2)
		}
		os.Exit(lint.RunEscapeGate(m, "", false, os.Stdout, os.Stderr))
	}
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchreport: -compare needs exactly two arguments: old.json new.json")
			os.Exit(2)
		}
		os.Exit(compareReports(flag.Arg(0), flag.Arg(1), *maxRatio))
	}
	if *quick {
		if *maxK > 8 {
			*maxK = 8
		}
		*rounds = 1
	}
	if *maxK < 8 {
		*maxK = 8
	}
	if *maxK > 10 {
		*maxK = 10
	}

	rep := &Report{
		Schema:     "scg-bench/v1",
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	kernelIters := 2_000_000
	stretchPairs := 200
	if *quick {
		kernelIters = 200_000
		stretchPairs = 50
	}
	rep.Entries = append(rep.Entries, rankKernels(kernelIters)...)
	for k := 8; k <= *maxK; k++ {
		rep.Entries = append(rep.Entries, bfsSuite(k, *rounds, *workers)...)
	}
	rep.Entries = append(rep.Entries, stretchEntry(stretchPairs))
	storeIters := 200
	if *quick {
		storeIters = 50
	}
	rep.Entries = append(rep.Entries, storeDecodeEntry(storeIters))
	routeIters := 4000
	if *quick {
		routeIters = 1000
	}
	rep.Entries = append(rep.Entries, routeHotEntry(routeIters*4))
	rep.Entries = append(rep.Entries, telemetryGuard(routeIters)...)

	enc, err := json.MarshalIndent(rep, "", "  ")
	fail(err)
	enc = append(enc, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(enc)
		fail(err)
		return
	}
	fail(os.WriteFile(*out, enc, 0o644))
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(rep.Entries))
}

// benchedHotpaths is the set of //scglint:hotpath-annotated functions these
// benchmarks exercise: the rank and compose kernels (rankKernels and every
// BFS edge), the serial engine's expansion loop and the bitset engine's
// expand/merge loops (bfsSuite), the precomposed-table build kernel
// (neighbor-table entries), the store decode kernel (store/decode), and the
// warm-route distance overlay (route/hot and the telemetry guard's
// /v1/route traffic). perm.Rank is the deliberately unannotated O(k²)
// reference, so it is absent. If an annotation is added or removed, this
// list and the benchmark that drives the kernel must move together — the
// -hotpath-report cross-check fails CI otherwise.
var benchedHotpaths = []string{
	"repro/internal/core.(*NeighborTable).fillChunk",
	"repro/internal/core.(*bitsetBFS).expandWords",
	"repro/internal/core.(*bitsetBFS).mergeWords",
	"repro/internal/core.(*serialBFS).expandNode",
	"repro/internal/perm.(Perm).ComposeInto",
	"repro/internal/perm.(Perm).RankBits",
	"repro/internal/perm.(Perm).RankInto",
	"repro/internal/perm.UnrankInto",
	"repro/internal/server.routeDistance",
	"repro/internal/store.decodeU32LE",
}

// crossCheckHotpaths compares the annotated kernel set from a
// `scglint -hotpath-report` dump (one `id<TAB>pos<TAB>reason` line per
// root) against benchedHotpaths and reports the difference in both
// directions. Returns the process exit code.
func crossCheckHotpaths(path string) int {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		return 1
	}
	annotated := make(map[string]bool)
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		id, _, _ := strings.Cut(line, "\t")
		annotated[id] = true
	}
	benched := make(map[string]bool, len(benchedHotpaths))
	for _, id := range benchedHotpaths {
		benched[id] = true
	}
	var unbenched, unannotated []string
	for id := range annotated {
		if !benched[id] {
			unbenched = append(unbenched, id)
		}
	}
	for _, id := range benchedHotpaths {
		if !annotated[id] {
			unannotated = append(unannotated, id)
		}
	}
	sort.Strings(unbenched)
	sort.Strings(unannotated)
	for _, id := range unbenched {
		fmt.Fprintf(os.Stderr, "benchreport: hotpath %s is annotated but no benchmark drives it\n", id)
	}
	for _, id := range unannotated {
		fmt.Fprintf(os.Stderr, "benchreport: kernel %s is benchmarked but carries no //scglint:hotpath annotation\n", id)
	}
	if len(unbenched) > 0 || len(unannotated) > 0 {
		return 1
	}
	fmt.Printf("benchreport: %d hotpath kernel(s) verified against the benchmark set\n", len(annotated))
	return 0
}

// compareReports is the regression gate: every benchmark present in both
// reports must hold new ns/op <= old ns/op * maxRatio and must not gain
// allocations (tolerance half an alloc, since the counts are means over a
// finite loop); route/hot additionally must report exactly zero allocs/op no
// matter what the old report says. Benchmarks present in only one report are
// listed but do not fail the gate — CI compares a -quick smoke run (k <= 8)
// against the full committed baseline (k <= 10). Returns the process exit
// code.
func compareReports(oldPath, newPath string, maxRatio float64) int {
	oldRep, err := readReport(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		return 1
	}
	newRep, err := readReport(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		return 1
	}
	oldByName := make(map[string]Entry, len(oldRep.Entries))
	for _, e := range oldRep.Entries {
		oldByName[e.Name] = e
	}
	bad := 0
	compared := 0
	for _, n := range newRep.Entries {
		if n.Name == "route/hot" && n.AllocsPerOp != 0 {
			fmt.Fprintf(os.Stderr, "benchreport: FAIL %s: %.2f allocs/op, the warm route handler must not allocate\n", n.Name, n.AllocsPerOp)
			bad++
		}
		o, ok := oldByName[n.Name]
		if !ok {
			fmt.Printf("benchreport: new benchmark %s (%.0f ns/op), no old counterpart\n", n.Name, n.NsPerOp)
			continue
		}
		delete(oldByName, n.Name)
		compared++
		if o.NsPerOp > 0 && n.NsPerOp > o.NsPerOp*maxRatio {
			fmt.Fprintf(os.Stderr, "benchreport: FAIL %s: %.0f ns/op vs %.0f ns/op old (%.2fx > %.2fx allowed)\n",
				n.Name, n.NsPerOp, o.NsPerOp, n.NsPerOp/o.NsPerOp, maxRatio)
			bad++
			continue
		}
		if n.AllocsPerOp > o.AllocsPerOp+0.5 {
			fmt.Fprintf(os.Stderr, "benchreport: FAIL %s: %.2f allocs/op vs %.2f old\n", n.Name, n.AllocsPerOp, o.AllocsPerOp)
			bad++
			continue
		}
		fmt.Printf("benchreport: ok %s: %.0f ns/op vs %.0f old (%.2fx)\n", n.Name, n.NsPerOp, o.NsPerOp, ratioOf(n.NsPerOp, o.NsPerOp))
	}
	var missing []string
	for name := range oldByName {
		missing = append(missing, name)
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Printf("benchreport: old benchmark %s absent from the new report\n", name)
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchreport: the reports share no benchmarks — nothing was gated")
		return 1
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "benchreport: %d regression(s) across %d shared benchmark(s)\n", bad, compared)
		return 1
	}
	fmt.Printf("benchreport: %d shared benchmark(s) within thresholds\n", compared)
	return 0
}

func ratioOf(n, o float64) float64 {
	if o == 0 {
		return 0
	}
	return n / o
}

func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if rep.Schema != "scg-bench/v1" {
		return nil, fmt.Errorf("%s: unknown schema %q", path, rep.Schema)
	}
	return &rep, nil
}

// rankKernels times the three rank implementations on one fixed k = 10
// permutation: the innermost loop of every exact measurement.
func rankKernels(iters int) []Entry {
	p := perm.Random(10, perm.NewRNG(1))
	scratch := perm.NewRankScratch(10)
	var sink int64

	t0 := time.Now()
	for i := 0; i < iters; i++ {
		sink += p.Rank()
	}
	rank := time.Since(t0)

	t0 = time.Now()
	for i := 0; i < iters; i++ {
		sink += p.RankInto(scratch)
	}
	rankInto := time.Since(t0)

	t0 = time.Now()
	for i := 0; i < iters; i++ {
		sink += p.RankBits()
	}
	rankBits := time.Since(t0)

	detail := fmt.Sprintf("fixed perm, checksum %d", sink%1000)
	return []Entry{
		{Name: "rank/lehmer-k2", K: 10, Rounds: iters, NsPerOp: nsPerOp(rank, iters), Detail: detail},
		{Name: "rank/fenwick", K: 10, Rounds: iters, NsPerOp: nsPerOp(rankInto, iters), Detail: detail},
		{Name: "rank/popcount", K: 10, Rounds: iters, NsPerOp: nsPerOp(rankBits, iters), Detail: detail},
	}
}

// bfsSuite measures the BFS engine family on star(k): the serial byte-table
// walk, the precomposed neighbor-table build (the one-time cost the bitset
// engines amortize), and the table-resident bitset sweep single-threaded and
// at the requested worker count. The table is dropped between build rounds so
// every build is cold, left resident for the sweep entries so they time only
// the frontier work, and dropped at the end so successive k do not stack
// hundreds of megabytes.
func bfsSuite(k, rounds, workers int) []Entry {
	nw, err := topology.NewStar(k)
	fail(err)
	g := nw.Graph()
	src := perm.Identity(k)
	w := workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}

	var diam int
	serial := time.Duration(0)
	for r := 0; r < rounds; r++ {
		t0 := time.Now()
		res, err := g.BFSSerial(src)
		fail(err)
		serial += time.Since(t0)
		diam = res.Eccentricity
	}

	build := time.Duration(0)
	for r := 0; r < rounds; r++ {
		g.DropNeighborTable()
		t0 := time.Now()
		_, err := g.EnsureNeighborTable(workers)
		fail(err)
		build += time.Since(t0)
	}

	check := func(name string, run func() (ecc int, err error)) time.Duration {
		total := time.Duration(0)
		for r := 0; r < rounds; r++ {
			t0 := time.Now()
			ecc, err := run()
			fail(err)
			total += time.Since(t0)
			if ecc != diam {
				fail(fmt.Errorf("benchreport: %s diameter %d != serial %d at k=%d", name, ecc, diam, k))
			}
		}
		return total
	}
	bitset := check("bitset BFS", func() (int, error) {
		res, err := g.BFSBitset(src)
		if err != nil {
			return 0, err
		}
		return res.Eccentricity, nil
	})
	parallel := check("parallel BFS", func() (int, error) {
		res, err := g.BFSParallel(src, workers)
		if err != nil {
			return 0, err
		}
		return res.Eccentricity, nil
	})
	g.DropNeighborTable()

	detail := fmt.Sprintf("star(%d), %d states, diameter %d", k, perm.Factorial(k), diam)
	tblDetail := fmt.Sprintf("star(%d), %d states x degree %d, cold build", k, perm.Factorial(k), g.OutDegree())
	return []Entry{
		{Name: fmt.Sprintf("bfs-serial/star-%d", k), K: k, Rounds: rounds, NsPerOp: nsPerOp(serial, rounds), Detail: detail},
		{Name: fmt.Sprintf("neighbor-table/star-%d", k), K: k, Workers: w, Rounds: rounds, NsPerOp: nsPerOp(build, rounds), Detail: tblDetail},
		{Name: fmt.Sprintf("bfs-bitset/star-%d", k), K: k, Workers: 1, Rounds: rounds, NsPerOp: nsPerOp(bitset, rounds), Detail: detail + ", table resident"},
		{Name: fmt.Sprintf("bfs-parallel/star-%d", k), K: k, Workers: w, Rounds: rounds, NsPerOp: nsPerOp(parallel, rounds), Detail: detail + ", table resident"},
	}
}

// stretchEntry times MeasureStretch on star(7): repeated shortest-path
// searches against the solver's routes, the scratch-reuse hot path.
func stretchEntry(pairs int) Entry {
	nw, err := topology.NewStar(7)
	fail(err)
	t0 := time.Now()
	st, err := nw.Graph().MeasureStretch(pairs, 1, func(src, dst perm.Perm) (int, error) {
		return nw.RouteLen(src, dst)
	})
	fail(err)
	elapsed := time.Since(t0)
	return Entry{
		Name:    "stretch/star-7",
		K:       7,
		Rounds:  pairs,
		NsPerOp: nsPerOp(elapsed, pairs),
		Detail:  fmt.Sprintf("%d pairs, mean stretch %.3f, %d optimal", st.Pairs, st.MeanStretch, st.Optimal),
	}
}

// storeDecodeEntry times store.DecodeEntry on a star(8) entry that carries
// the precomposed neighbor table — the sequential-read half of a warm
// start. The neighbor section dominates the file (k!·deg little-endian
// words), so this benchmark is what drives the decodeU32LE hotpath kernel.
func storeDecodeEntry(iters int) Entry {
	nw, err := topology.NewStar(8)
	fail(err)
	g := nw.Graph()
	prof, err := g.ExactProfile()
	fail(err)
	tbl, err := g.EnsureNeighborTable(0)
	fail(err)
	buf, err := store.AppendEntry(nil, &store.Entry{
		Family: "star", L: 1, N: 7, K: 8, Profile: prof, Neighbors: tbl,
	})
	fail(err)
	g.DropNeighborTable()

	ecc := -1
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		dec, err := store.DecodeEntry(buf)
		fail(err)
		ecc = dec.Profile.Eccentricity
	}
	elapsed := time.Since(t0)
	if ecc != prof.Eccentricity {
		fail(fmt.Errorf("benchreport: store decode diameter %d != built %d", ecc, prof.Eccentricity))
	}
	return Entry{
		Name:    "store/decode-star-8",
		K:       8,
		Rounds:  iters,
		NsPerOp: nsPerOp(elapsed, iters),
		Detail:  fmt.Sprintf("%d-byte scgstore/v1 entry with neighbor table, diameter %d", len(buf), ecc),
	}
}

// routeHotEntry measures the warm /v1/route handler alone — past the mux
// middleware, straight into the pooled-scratch path — and fails the whole
// report if it allocates at all. This is the allocs/op = 0 gate on the
// server's hottest endpoint; BenchmarkRouteHot is the go-test spelling of
// the same loop.
func routeHotEntry(iters int) Entry {
	s := server.New(server.Config{
		RequestTimeout: 30 * time.Second,
		SampleInterval: -1,
	})
	defer s.Close()
	const target = "/v1/route?family=MS&l=2&n=3&src=2314567&dst=7654321"
	ns, allocs, err := server.MeasureRouteHot(s, target, iters)
	fail(err)
	if allocs != 0 {
		fail(fmt.Errorf("benchreport: warm /v1/route handler allocates %.2f times per request, want exactly 0", allocs))
	}
	return Entry{
		Name:        "route/hot",
		K:           7,
		Rounds:      iters,
		NsPerOp:     ns,
		AllocsPerOp: allocs,
		Detail:      "warm-cache MS(2,3) GET handler only, asserted 0 allocs/op",
	}
}

// telemetryGuard is the zero-overhead assertion for scgd's request tracing:
// it drives identical warm-cache /v1/route traffic through two in-process
// servers — tracing enabled and disabled — and fails the whole report if
// the allocations-per-request delta is nonzero. Pooled traces and always-on
// atomic counters are the design invariant this pins; a regression (say, a
// span slice escaping the pool) shows up as a broken build, not a slow
// fleet.
func telemetryGuard(iters int) []Entry {
	on := measureRoute(iters, false)
	off := measureRoute(iters, true)
	delta := on.AllocsPerOp - off.AllocsPerOp
	if math.Abs(delta) >= 1 {
		fail(fmt.Errorf("benchreport: telemetry is not allocation-free: %.2f allocs/op traced vs %.2f untraced (delta %.2f)",
			on.AllocsPerOp, off.AllocsPerOp, delta))
	}
	guard := Entry{
		Name:        "telemetry/route-alloc-delta",
		Rounds:      iters,
		AllocsPerOp: delta,
		Detail:      "asserted |delta| < 1 alloc/op between traced and untraced /v1/route",
	}
	return []Entry{on, off, guard}
}

// measureRoute times warm /v1/route requests against one in-process server
// and reports mean wall time and heap allocations per request.
func measureRoute(iters int, disableTracing bool) Entry {
	s := server.New(server.Config{
		RequestTimeout: 30 * time.Second,
		DisableTracing: disableTracing,
		SampleInterval: -1,
	})
	defer s.Close()
	const target = "/v1/route?family=MS&l=2&n=3&src=2314567&dst=7654321"
	serve := func() {
		r := httptest.NewRequest(http.MethodGet, target, nil)
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			fail(fmt.Errorf("benchreport: route = %d: %s", w.Code, w.Body.String()))
		}
	}
	for i := 0; i < 100; i++ {
		serve() // warm the cache, the trace pool, and the JSON encoder paths
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		serve()
	}
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&after)
	name := "telemetry/route-traced"
	if disableTracing {
		name = "telemetry/route-untraced"
	}
	return Entry{
		Name:        name,
		K:           7,
		Rounds:      iters,
		NsPerOp:     nsPerOp(elapsed, iters),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(iters),
		Detail:      "warm-cache MS(2,3) route through the full middleware stack",
	}
}

func nsPerOp(d time.Duration, n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(d.Nanoseconds()) / float64(n)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
}
