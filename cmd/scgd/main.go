// Command scgd is the super-Cayley topology-query daemon: a stdlib-only
// net/http JSON service answering the query workload a fabric controller
// issues against the paper's networks — route lookup (the ball-arrangement
// game solvers), neighbor enumeration, degree/diameter/cost metrics, and
// async exact BFS profiles — from a byte-budgeted topology cache with
// request coalescing and per-endpoint admission control.
//
// Endpoints: /v1/route, /v1/neighbors, /v1/metrics, /v1/profile (async
// jobs: submit returns a job ID, poll with ?id=), /healthz, /statsz, and
// /metricsz (Prometheus text exposition of the same counters /statsz
// reports, plus runtime/metrics gauges).
//
// Every response carries an X-Request-Id (propagated from the client when
// valid, generated otherwise) that joins the access log, the slow-request
// log (-slow-log/-slow-ms: per-phase span timelines for slow requests and
// async profile builds), and /v1/profile job snapshots.
//
// Examples:
//
//	scgd -addr :8080
//	curl 'localhost:8080/v1/route?family=MS&l=2&n=3&src=1234567&dst=7654321'
//	curl 'localhost:8080/v1/metrics?family=complete-RS&l=3&n=2'
//	curl 'localhost:8080/v1/profile?family=MS&l=2&n=3'   # -> job id
//	curl 'localhost:8080/v1/profile?id=job-1'            # -> status/result
//	curl 'localhost:8080/metricsz'                       # -> Prometheus text
//	scgd -debug-addr 127.0.0.1:6060                      # pprof sidecar
//
// -debug-addr serves net/http/pprof on its own listener — never on the
// serving mux — so profiling stays reachable under load shed and is bound
// to loopback by operator choice rather than exposed with the API.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes,
// in-flight requests drain (bounded by -drain-timeout), queued profile
// jobs finish, and the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/version"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		cacheMB      = flag.Int64("cache-mb", 256, "topology/profile cache budget in MiB")
		maxInflight  = flag.Int("max-inflight", 64, "max concurrent requests per gated endpoint (excess get 503)")
		profWorkers  = flag.Int("profile-workers", 0, "exact-profile job workers (0 = GOMAXPROCS)")
		profQueue    = flag.Int("profile-queue", 16, "exact-profile job queue depth (full queue gets 503)")
		reqTimeout   = flag.Duration("request-timeout", 10*time.Second, "per-request context deadline")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown drain bound for in-flight requests")
		maxK         = flag.Int("max-k", 20, "largest node-label length a request may materialize (<= 20)")
		accessLog    = flag.String("access-log", "", "NDJSON access-record path ('-' for stdout, empty = off)")
		slowLog      = flag.String("slow-log", "", "NDJSON slow-request path ('-' for stdout, empty = off)")
		slowMS       = flag.Int64("slow-ms", 250, "slow-log latency threshold in milliseconds (0 logs every request)")
		noTracing    = flag.Bool("no-tracing", false, "disable request span timelines and the slow log")
		sampleEvery  = flag.Duration("metrics-sample", 10*time.Second, "runtime/metrics sampling interval (negative = off)")
		debugAddr    = flag.String("debug-addr", "", "serve net/http/pprof on this separate address (empty = off)")
		storeDir     = flag.String("store", "", "persistent profile-store directory (empty = off); profiles load from here before BFS and write back after")
		showVersion  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String("scgd"))
		return
	}

	cfg := server.Config{
		CacheBytes:     *cacheMB << 20,
		MaxInflight:    *maxInflight,
		ProfileWorkers: *profWorkers,
		ProfileQueue:   *profQueue,
		RequestTimeout: *reqTimeout,
		MaxK:           *maxK,
		SlowThreshold:  time.Duration(*slowMS) * time.Millisecond,
		DisableTracing: *noTracing,
		SampleInterval: *sampleEvery,
	}
	cfg.AccessLog = openLog(*accessLog)
	cfg.SlowLog = openLog(*slowLog)
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		fail(err)
		cfg.Store = st
	}

	ln, err := net.Listen("tcp", *addr)
	fail(err)
	fmt.Printf("scgd listening on %s (cache %d MiB, %d in-flight per endpoint)\n",
		ln.Addr(), *cacheMB, *maxInflight)
	if cfg.Store != nil {
		fmt.Printf("scgd profile store at %s\n", cfg.Store.Dir())
	}

	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		fail(err)
		fmt.Printf("scgd pprof on %s\n", dln.Addr())
		// The pprof mux is explicit: only the profiling handlers, on a
		// listener the API traffic never reaches. The goroutine dies with
		// the process; profiling needs no graceful drain.
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dsrv := &http.Server{Handler: dmux}
		go func() { _ = dsrv.Serve(dln) }()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	s := server.New(cfg)
	err = server.Run(ctx, ln, s, *drainTimeout)
	fail(err)
	fmt.Println("scgd: drained, bye")
}

// openLog resolves an NDJSON sink flag: empty = off, "-" = stdout,
// otherwise append to the named file (left open until process exit).
func openLog(path string) io.Writer {
	switch path {
	case "":
		return nil
	case "-":
		return os.Stdout
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	fail(err)
	return f
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "scgd:", err)
		os.Exit(1)
	}
}
