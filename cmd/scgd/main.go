// Command scgd is the super-Cayley topology-query daemon: a stdlib-only
// net/http JSON service answering the query workload a fabric controller
// issues against the paper's networks — route lookup (the ball-arrangement
// game solvers), neighbor enumeration, degree/diameter/cost metrics, and
// async exact BFS profiles — from a byte-budgeted topology cache with
// request coalescing and per-endpoint admission control.
//
// Endpoints: /v1/route, /v1/neighbors, /v1/metrics, /v1/profile (async
// jobs: submit returns a job ID, poll with ?id=), /healthz, /statsz.
//
// Examples:
//
//	scgd -addr :8080
//	curl 'localhost:8080/v1/route?family=MS&l=2&n=3&src=1234567&dst=7654321'
//	curl 'localhost:8080/v1/metrics?family=complete-RS&l=3&n=2'
//	curl 'localhost:8080/v1/profile?family=MS&l=2&n=3'   # -> job id
//	curl 'localhost:8080/v1/profile?id=job-1'            # -> status/result
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes,
// in-flight requests drain (bounded by -drain-timeout), queued profile
// jobs finish, and the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/version"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		cacheMB      = flag.Int64("cache-mb", 256, "topology/profile cache budget in MiB")
		maxInflight  = flag.Int("max-inflight", 64, "max concurrent requests per gated endpoint (excess get 503)")
		profWorkers  = flag.Int("profile-workers", 0, "exact-profile job workers (0 = GOMAXPROCS)")
		profQueue    = flag.Int("profile-queue", 16, "exact-profile job queue depth (full queue gets 503)")
		reqTimeout   = flag.Duration("request-timeout", 10*time.Second, "per-request context deadline")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown drain bound for in-flight requests")
		maxK         = flag.Int("max-k", 20, "largest node-label length a request may materialize (<= 20)")
		accessLog    = flag.String("access-log", "", "NDJSON access-record path ('-' for stdout, empty = off)")
		showVersion  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String("scgd"))
		return
	}

	cfg := server.Config{
		CacheBytes:     *cacheMB << 20,
		MaxInflight:    *maxInflight,
		ProfileWorkers: *profWorkers,
		ProfileQueue:   *profQueue,
		RequestTimeout: *reqTimeout,
		MaxK:           *maxK,
	}
	switch *accessLog {
	case "":
	case "-":
		cfg.AccessLog = os.Stdout
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		fail(err)
		defer func() { _ = f.Close() }()
		cfg.AccessLog = f
	}

	ln, err := net.Listen("tcp", *addr)
	fail(err)
	fmt.Printf("scgd listening on %s (cache %d MiB, %d in-flight per endpoint)\n",
		ln.Addr(), *cacheMB, *maxInflight)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	s := server.New(cfg)
	err = server.Run(ctx, ln, s, *drainTimeout)
	fail(err)
	fmt.Println("scgd: drained, bye")
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "scgd:", err)
		os.Exit(1)
	}
}
